// Unit tests for the discrete-event simulator: scheduler semantics,
// network delivery and accounting, churn injection, metrics.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/churn.hpp"
#include "sim/metrics.hpp"
#include "sim/network.hpp"
#include "sim/reliable.hpp"
#include "sim/scheduler.hpp"
#include "sim/topology.hpp"

namespace aa::sim {
namespace {

// --- Scheduler ---

TEST(Scheduler, ExecutesInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.after(300, [&] { order.push_back(3); });
  s.after(100, [&] { order.push_back(1); });
  s.after(200, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 300);
}

TEST(Scheduler, FifoAmongEqualTimes) {
  Scheduler s;
  std::vector<int> order;
  s.after(100, [&] { order.push_back(1); });
  s.after(100, [&] { order.push_back(2); });
  s.after(100, [&] { order.push_back(3); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Scheduler, NestedSchedulingFromHandlers) {
  Scheduler s;
  std::vector<std::string> log;
  s.after(10, [&] {
    log.push_back("a");
    s.after(5, [&] { log.push_back("b"); });
  });
  s.run();
  EXPECT_EQ(log, (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(s.now(), 15);
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler s;
  bool ran = false;
  const TaskId id = s.after(10, [&] { ran = true; });
  s.cancel(id);
  s.run();
  EXPECT_FALSE(ran);
}

TEST(Scheduler, RunUntilLeavesLaterEvents) {
  Scheduler s;
  int count = 0;
  s.after(10, [&] { ++count; });
  s.after(100, [&] { ++count; });
  s.run_until(50);
  EXPECT_EQ(count, 1);
  EXPECT_EQ(s.now(), 50);
  s.run();
  EXPECT_EQ(count, 2);
}

TEST(Scheduler, PeriodicTaskRepeatsUntilCancelled) {
  Scheduler s;
  int fires = 0;
  const TaskId id = s.every(10, [&] { ++fires; });
  s.run_until(55);
  EXPECT_EQ(fires, 5);
  s.cancel(id);
  s.run_until(200);
  EXPECT_EQ(fires, 5);
}

TEST(Scheduler, PeriodicTaskCanCancelItself) {
  Scheduler s;
  int fires = 0;
  TaskId id = kInvalidTask;
  id = s.every(10, [&] {
    if (++fires == 3) s.cancel(id);
  });
  s.run_until(500);
  EXPECT_EQ(fires, 3);
}

TEST(Scheduler, CancelReleasesPeriodicCallbackState) {
  // Regression: every()'s tick closure used to hold a shared_ptr to
  // itself, so a periodic task and everything it captured leaked for
  // the life of the process even after cancel().
  Scheduler s;
  auto state = std::make_shared<int>(7);
  std::weak_ptr<int> observer = state;
  const TaskId id = s.every(10, [state] { (void)*state; });
  state.reset();
  s.run_until(35);
  EXPECT_FALSE(observer.expired());  // still alive while scheduled
  s.cancel(id);
  EXPECT_TRUE(observer.expired());  // cancel frees the captured state
}

TEST(Scheduler, DestructionReleasesPeriodicCallbackState) {
  auto state = std::make_shared<int>(7);
  std::weak_ptr<int> observer = state;
  {
    Scheduler s;
    s.every(10, [state] { (void)*state; });
    state.reset();
    s.run_until(35);
    EXPECT_FALSE(observer.expired());
  }
  EXPECT_TRUE(observer.expired());  // scheduler teardown frees the task
}

TEST(Scheduler, PastTimesClampToNow) {
  Scheduler s;
  s.after(100, [&] {
    s.at(5, [&] { EXPECT_GE(s.now(), 100); });
  });
  s.run();
}

// --- Topologies ---

TEST(Topology, UniformLatency) {
  UniformTopology t(4, duration::millis(10));
  EXPECT_EQ(t.latency(0, 1), duration::millis(10));
  EXPECT_EQ(t.latency(2, 3), duration::millis(10));
  EXPECT_LT(t.latency(1, 1), duration::millis(1));
}

TEST(Topology, EuclideanSymmetricAndDeterministic) {
  EuclideanTopology t1(16, 100.0, duration::millis(1), duration::micros(50), 42);
  EuclideanTopology t2(16, 100.0, duration::millis(1), duration::micros(50), 42);
  for (HostId a = 0; a < 16; ++a) {
    for (HostId b = 0; b < 16; ++b) {
      EXPECT_EQ(t1.latency(a, b), t1.latency(b, a));
      EXPECT_EQ(t1.latency(a, b), t2.latency(a, b));
    }
  }
}

TEST(Topology, TransitStubIntraCheaperThanInter) {
  TransitStubTopology::Params p;
  p.regions = 4;
  TransitStubTopology t(16, p);
  // Hosts 0 and 4 share region 0; hosts 0 and 1 are in different regions.
  EXPECT_EQ(t.region_of(0), t.region_of(4));
  EXPECT_NE(t.region_of(0), t.region_of(1));
  EXPECT_LT(t.latency(0, 4), t.latency(0, 1));
}

// --- Network ---

struct NetFixture {
  Scheduler sched;
  std::shared_ptr<UniformTopology> topo = std::make_shared<UniformTopology>(8, 1000);
  Network net{sched, topo};
};

TEST(Network, DeliversAfterLatency) {
  NetFixture f;
  SimTime delivered_at = -1;
  f.net.register_handler(1, "test", [&](const Packet&) { delivered_at = f.sched.now(); });
  f.net.send(0, 1, "test", std::string("hi"), 100);
  f.sched.run();
  EXPECT_GE(delivered_at, 1000);
}

TEST(Network, BodyTypePreserved) {
  NetFixture f;
  std::string got;
  f.net.register_handler(1, "test", [&](const Packet& p) {
    const auto* body = packet_body<std::string>(p);
    ASSERT_NE(body, nullptr);
    got = *body;
  });
  f.net.send(0, 1, "test", std::string("payload"), 10);
  f.sched.run();
  EXPECT_EQ(got, "payload");
}

TEST(Network, DropsWhenDestinationDown) {
  NetFixture f;
  int received = 0;
  f.net.register_handler(1, "test", [&](const Packet&) { ++received; });
  f.net.set_host_up(1, false);
  f.net.send(0, 1, "test", 1, 10);
  f.sched.run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(f.net.stats().messages_dropped, 1u);
}

TEST(Network, DropsInFlightWhenDestinationDiesBeforeDelivery) {
  NetFixture f;
  int received = 0;
  f.net.register_handler(1, "test", [&](const Packet&) { ++received; });
  f.net.send(0, 1, "test", 1, 10);
  f.sched.after(10, [&] { f.net.set_host_up(1, false); });  // dies mid-flight
  f.sched.run();
  EXPECT_EQ(received, 0);
}

TEST(Network, CountsBytesAndMessages) {
  NetFixture f;
  f.net.register_handler(1, "test", [](const Packet&) {});
  f.net.send(0, 1, "test", 1, 250);
  f.net.send(0, 1, "test", 2, 750);
  f.sched.run();
  EXPECT_EQ(f.net.stats().messages_sent, 2u);
  EXPECT_EQ(f.net.stats().messages_delivered, 2u);
  EXPECT_EQ(f.net.stats().bytes_sent, 1000u);
  EXPECT_EQ(f.net.delivered_to(1), 2u);
}

TEST(Network, SourceDropsAreNotCountedAsTraffic) {
  // A packet refused at the source (host down / id out of range) never
  // reaches the wire: it must count as a drop, not as sent traffic,
  // or bytes-per-delivery metrics skew under churn.
  NetFixture f;
  f.net.register_handler(1, "test", [](const Packet&) {});
  f.net.set_host_up(0, false);
  f.net.send(0, 1, "test", 1, 500);
  f.net.send(42, 1, "test", 1, 500);  // src out of range
  f.sched.run();
  EXPECT_EQ(f.net.stats().messages_sent, 0u);
  EXPECT_EQ(f.net.stats().bytes_sent, 0u);
  EXPECT_EQ(f.net.stats().messages_dropped, 2u);
}

TEST(Network, NoHandlerCountsAsDrop) {
  NetFixture f;
  f.net.send(0, 1, "nobody", 1, 10);
  f.sched.run();
  EXPECT_EQ(f.net.stats().messages_dropped, 1u);
}

TEST(Network, LiveHostsReflectsState) {
  NetFixture f;
  EXPECT_EQ(f.net.live_hosts().size(), 8u);
  f.net.set_host_up(3, false);
  EXPECT_EQ(f.net.live_hosts().size(), 7u);
}

TEST(Network, LinkIsFifoEvenAcrossSizes) {
  // A small message sent after a large one on the same link must not
  // overtake it (TCP-like per-link ordering).
  NetFixture f;
  std::vector<int> order;
  f.net.register_handler(1, "t", [&](const Packet& p) {
    order.push_back(*packet_body<int>(p));
  });
  f.net.send(0, 1, "t", 1, 1000000);  // large: 10 ms transmission
  f.net.send(0, 1, "t", 2, 1);        // tiny
  f.sched.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Network, DistinctLinksDoNotSerialise) {
  NetFixture f;
  std::vector<int> order;
  for (HostId h : {1u, 2u}) {
    f.net.register_handler(h, "t", [&](const Packet& p) {
      order.push_back(*packet_body<int>(p));
    });
  }
  f.net.send(0, 1, "t", 1, 1000000);  // large, to host 1
  f.net.send(0, 2, "t", 2, 1);        // tiny, to host 2: separate link
  f.sched.run();
  EXPECT_EQ(order, (std::vector<int>{2, 1}));
}

TEST(Network, TransmissionTimeAddsToLatency) {
  NetFixture f;  // bandwidth default: 100 bytes/us
  SimTime small_t = 0, big_t = 0;
  f.net.register_handler(1, "s", [&](const Packet&) { small_t = f.sched.now(); });
  f.net.register_handler(2, "b", [&](const Packet&) { big_t = f.sched.now(); });
  f.net.send(0, 1, "s", 1, 100);       // 1 us tx
  f.net.send(0, 2, "b", 1, 100000);    // 1000 us tx
  f.sched.run();
  EXPECT_GT(big_t, small_t);
}

// --- Link faults ---

TEST(LinkFaults, DropFaultLosesPacketsAndCounts) {
  NetFixture f;
  int received = 0;
  f.net.register_handler(1, "t", [&](const Packet&) { ++received; });
  f.net.set_link_faults({.drop = 1.0});
  f.net.send(0, 1, "t", 1, 10);
  f.sched.run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(f.net.stats().dropped_by_fault, 1u);
  EXPECT_EQ(f.net.stats().messages_sent, 1u);  // it did reach the wire
  EXPECT_EQ(f.net.stats().messages_delivered, 0u);
}

TEST(LinkFaults, LoopbackIsExempt) {
  NetFixture f;
  int received = 0;
  f.net.register_handler(0, "t", [&](const Packet&) { ++received; });
  f.net.set_link_faults({.drop = 1.0, .duplicate = 1.0});
  f.net.send(0, 0, "t", 1, 10);
  f.sched.run();
  EXPECT_EQ(received, 1);
  EXPECT_EQ(f.net.stats().dropped_by_fault, 0u);
  EXPECT_EQ(f.net.stats().duplicated, 0u);
}

TEST(LinkFaults, DuplicateDeliversTwice) {
  NetFixture f;
  int received = 0;
  f.net.register_handler(1, "t", [&](const Packet&) { ++received; });
  f.net.set_link_faults({.duplicate = 1.0});
  f.net.send(0, 1, "t", 1, 10);
  f.sched.run();
  EXPECT_EQ(received, 2);
  EXPECT_EQ(f.net.stats().duplicated, 1u);
  EXPECT_EQ(f.net.stats().messages_sent, 1u);
}

TEST(LinkFaults, ReorderBypassesLinkFifo) {
  // With reordering forced on and no jitter, a tiny packet sent after a
  // large one arrives first: each packet pays only its own transmission
  // time instead of queueing behind the link.
  NetFixture f;
  std::vector<int> order;
  f.net.register_handler(1, "t", [&](const Packet& p) {
    order.push_back(*packet_body<int>(p));
  });
  f.net.set_link_faults({.reorder = 1.0, .jitter = 0});
  f.net.send(0, 1, "t", 1, 1000000);  // large: 10 ms transmission
  f.net.send(0, 1, "t", 2, 1);        // tiny: overtakes
  f.sched.run();
  EXPECT_EQ(order, (std::vector<int>{2, 1}));
}

TEST(LinkFaults, PerLinkOverrideWinsOverDefault) {
  NetFixture f;
  int to_1 = 0, to_2 = 0;
  f.net.register_handler(1, "t", [&](const Packet&) { ++to_1; });
  f.net.register_handler(2, "t", [&](const Packet&) { ++to_2; });
  f.net.set_link_faults({.drop = 1.0});
  f.net.set_link_faults(0, 1, LinkFaults{});  // clean override inside a lossy net
  f.net.send(0, 1, "t", 1, 10);
  f.net.send(0, 2, "t", 1, 10);
  f.sched.run();
  EXPECT_EQ(to_1, 1);
  EXPECT_EQ(to_2, 0);
  f.net.clear_link_faults();
  f.net.send(0, 2, "t", 1, 10);
  f.sched.run();
  EXPECT_EQ(to_2, 1);
}

TEST(LinkFaults, KilledLinkDropsEverything) {
  NetFixture f;
  int received = 0;
  f.net.register_handler(1, "t", [&](const Packet&) { ++received; });
  f.net.set_link_faults(0, 1, {.drop = 1.0});
  for (int i = 0; i < 10; ++i) f.net.send(0, 1, "t", i, 10);
  f.sched.run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(f.net.stats().dropped_by_fault, 10u);
}

TEST(LinkFaults, FaultsAreDeterministicPerSeed) {
  auto run = [](std::uint64_t seed) {
    NetFixture f;
    std::vector<int> got;
    f.net.register_handler(1, "t", [&](const Packet& p) {
      got.push_back(*packet_body<int>(p));
    });
    f.net.set_link_faults(
        {.drop = 0.3, .duplicate = 0.2, .reorder = 0.3, .jitter = 2000, .seed = seed});
    for (int i = 0; i < 200; ++i) f.net.send(0, 1, "t", i, 100);
    f.sched.run();
    return got;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}

TEST(Partition, BlocksBothDirectionsUntilHealed) {
  NetFixture f;
  int received = 0;
  f.net.register_handler(1, "t", [&](const Packet&) { ++received; });
  f.net.register_handler(0, "t", [&](const Packet&) { ++received; });
  f.net.partition("cut", {0, 2}, {1, 3});
  EXPECT_TRUE(f.net.partitioned(0, 1));
  EXPECT_TRUE(f.net.partitioned(1, 0));
  EXPECT_TRUE(f.net.partitioned(3, 2));
  EXPECT_FALSE(f.net.partitioned(0, 2));  // same side
  f.net.send(0, 1, "t", 1, 10);
  f.net.send(1, 0, "t", 1, 10);
  f.sched.run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(f.net.stats().dropped_by_fault, 2u);
  f.net.heal("cut");
  EXPECT_FALSE(f.net.partitioned(0, 1));
  f.net.send(0, 1, "t", 1, 10);
  f.sched.run();
  EXPECT_EQ(received, 1);
}

TEST(Partition, NamedPartitionsHealIndependently) {
  NetFixture f;
  f.net.partition("a", {0}, {1});
  f.net.partition("b", {0}, {2});
  f.net.heal("a");
  EXPECT_FALSE(f.net.partitioned(0, 1));
  EXPECT_TRUE(f.net.partitioned(0, 2));
  f.net.heal();  // heal-all clears the rest
  EXPECT_FALSE(f.net.partitioned(0, 2));
}

TEST(Partition, InFlightPacketsStillArrive) {
  // Cutting a link mid-flight does not destroy packets already on the
  // wire — only new sends are blocked, as on a real network.
  NetFixture f;
  int received = 0;
  f.net.register_handler(1, "t", [&](const Packet&) { ++received; });
  f.net.send(0, 1, "t", 1, 10);
  f.sched.after(10, [&] { f.net.partition("cut", {0}, {1}); });
  f.sched.run();
  EXPECT_EQ(received, 1);
}

TEST(Network, InFlightPacketNotDeliveredToReincarnatedHost) {
  // The destination crashes and rejoins while the packet is in flight:
  // the reincarnated host is a fresh endpoint and must not receive
  // traffic addressed to its previous life.
  NetFixture f;
  int received = 0;
  f.net.register_handler(1, "t", [&](const Packet&) { ++received; });
  f.net.send(0, 1, "t", 1, 10);  // arrives at ~1000 us
  f.sched.after(10, [&] { f.net.set_host_up(1, false); });
  f.sched.after(20, [&] { f.net.set_host_up(1, true); });
  f.sched.run();
  EXPECT_TRUE(f.net.host_up(1));
  EXPECT_EQ(received, 0);
  EXPECT_EQ(f.net.stats().messages_dropped, 1u);
  // A packet sent to the new incarnation arrives normally.
  f.net.send(0, 1, "t", 2, 10);
  f.sched.run();
  EXPECT_EQ(received, 1);
}

// --- Reliable transport ---

TEST(ReliableTransport, ExactlyOnceUnderHeavyLoss) {
  NetFixture f;
  f.net.set_link_faults(
      {.drop = 0.4, .duplicate = 0.3, .reorder = 0.3, .jitter = 2000, .seed = 11});
  ReliableParams rp;
  rp.initial_rto = duration::millis(5);
  rp.max_rto = duration::millis(50);
  rp.max_retries = 40;
  ReliableTransport rt(f.net, "rel", rp);
  std::map<int, int> got;
  rt.register_handler(1, [&](const Packet& p) { ++got[*packet_body<int>(p)]; });
  for (int i = 0; i < 50; ++i) rt.send(0, 1, i, 100);
  f.sched.run();
  ASSERT_EQ(got.size(), 50u);
  for (const auto& [msg, count] : got) EXPECT_EQ(count, 1) << "message " << msg;
  EXPECT_EQ(rt.in_flight(), 0u);
  EXPECT_EQ(rt.stats().give_ups, 0u);
  EXPECT_GT(rt.stats().retransmits, 0u);
  // Retries are visible in the network-wide counters too.
  EXPECT_EQ(f.net.stats().retransmits, rt.stats().retransmits);
}

TEST(ReliableTransport, DeliveredPacketCarriesOriginalBodyAndSender) {
  NetFixture f;
  ReliableTransport rt(f.net, "rel");
  Packet seen;
  rt.register_handler(2, [&](const Packet& p) { seen = p; });
  rt.send(3, 2, std::string("payload"), 77);
  f.sched.run();
  EXPECT_EQ(seen.src, 3u);
  EXPECT_EQ(seen.dst, 2u);
  EXPECT_EQ(seen.wire_size, 77u);
  const auto* body = packet_body<std::string>(seen);
  ASSERT_NE(body, nullptr);
  EXPECT_EQ(*body, "payload");
}

TEST(ReliableTransport, RetransmitsAcrossPartitionUntilHealed) {
  NetFixture f;
  ReliableParams rp;
  rp.initial_rto = duration::millis(10);
  rp.max_rto = duration::millis(100);
  rp.max_retries = 40;
  ReliableTransport rt(f.net, "rel", rp);
  int got = 0;
  rt.register_handler(1, [&](const Packet&) { ++got; });
  f.net.partition("cut", {0}, {1});
  rt.send(0, 1, 42, 100);
  f.sched.after(duration::millis(300), [&] { f.net.heal("cut"); });
  f.sched.run();
  EXPECT_EQ(got, 1);
  EXPECT_EQ(rt.stats().give_ups, 0u);
  EXPECT_GT(rt.stats().retransmits, 0u);
  EXPECT_EQ(rt.in_flight(), 0u);
}

TEST(ReliableTransport, GivesUpAfterRetryCapWhenPeerIsDown) {
  NetFixture f;
  ReliableParams rp;
  rp.initial_rto = duration::millis(5);
  rp.max_rto = duration::millis(10);
  rp.max_retries = 3;
  ReliableTransport rt(f.net, "rel", rp);
  rt.register_handler(1, [](const Packet&) {});
  f.net.set_host_up(1, false);
  int gave_up = 0;
  Packet lost;
  rt.set_give_up([&](const Packet& p) {
    ++gave_up;
    lost = p;
  });
  rt.send(0, 1, std::string("x"), 50);
  f.sched.run();
  EXPECT_EQ(gave_up, 1);
  EXPECT_EQ(lost.dst, 1u);
  EXPECT_EQ(rt.stats().give_ups, 1u);
  EXPECT_EQ(rt.stats().retransmits, 3u);
  EXPECT_EQ(rt.in_flight(), 0u);
}

TEST(ReliableTransport, GivesUpPromptlyWhenPeerReincarnates) {
  // Regression: the transport used to burn the full retry budget against
  // a peer that had crashed and rejoined, even though the reincarnated
  // endpoint can never ack the old send.  The incarnation recorded at
  // send time must trigger a give-up at the first retry after the bump.
  NetFixture f;
  ReliableParams rp;
  rp.initial_rto = duration::millis(10);
  rp.max_rto = duration::millis(10);
  rp.max_retries = 1000;  // a full-budget wait would run ~10 s
  ReliableTransport rt(f.net, "rel", rp);
  rt.register_handler(1, [](const Packet&) {});
  int gave_up = 0;
  rt.set_give_up([&](const Packet&) { ++gave_up; });
  f.net.partition("cut", {0}, {1});  // the send and retries all drop
  rt.send(0, 1, 7, 50);
  f.sched.after(duration::millis(25), [&] {
    f.net.set_host_up(1, false);  // crash bumps the incarnation
    f.net.set_host_up(1, true);
    f.net.heal("cut");
  });
  f.sched.run();
  EXPECT_EQ(gave_up, 1);
  EXPECT_EQ(rt.stats().incarnation_give_ups, 1u);
  EXPECT_EQ(rt.stats().give_ups, 1u);
  EXPECT_LT(rt.stats().retransmits, 6u);  // gave up promptly, not at cap
  EXPECT_EQ(rt.in_flight(), 0u);
  // The scheduler drained in well under the full-budget horizon.
  EXPECT_LT(f.sched.now(), duration::seconds(1));
}

TEST(ReliableTransport, SameIncarnationStillRetriesToCap) {
  // Control for the above: a peer that is merely unreachable (same
  // incarnation) must still get the whole retry budget.
  NetFixture f;
  ReliableParams rp;
  rp.initial_rto = duration::millis(5);
  rp.max_rto = duration::millis(5);
  rp.max_retries = 4;
  ReliableTransport rt(f.net, "rel", rp);
  rt.register_handler(1, [](const Packet&) {});
  f.net.partition("cut", {0}, {1});
  rt.send(0, 1, 7, 50);
  f.sched.run();
  EXPECT_EQ(rt.stats().retransmits, 4u);
  EXPECT_EQ(rt.stats().give_ups, 1u);
  EXPECT_EQ(rt.stats().incarnation_give_ups, 0u);
}

// --- Churn ---

TEST(Churn, DirectedKillAndRevive) {
  NetFixture f;
  ChurnInjector churn(f.net, {});
  std::vector<std::pair<HostId, ChurnEvent>> events;
  churn.add_observer([&](HostId h, ChurnEvent e) { events.emplace_back(h, e); });
  churn.kill(2, /*graceful=*/false);
  EXPECT_FALSE(f.net.host_up(2));
  churn.revive(2);
  EXPECT_TRUE(f.net.host_up(2));
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].second, ChurnEvent::kCrash);
  EXPECT_EQ(events[1].second, ChurnEvent::kJoin);
}

TEST(Churn, GracefulLeaveNotifiesBeforeDown) {
  NetFixture f;
  ChurnInjector churn(f.net, {});
  bool was_up_at_notification = false;
  churn.add_observer([&](HostId h, ChurnEvent e) {
    if (e == ChurnEvent::kGracefulLeave) was_up_at_notification = f.net.host_up(h);
  });
  churn.kill(2, /*graceful=*/true);
  EXPECT_TRUE(was_up_at_notification);
  EXPECT_FALSE(f.net.host_up(2));
}

TEST(Churn, CrashNotifiesAfterDown) {
  NetFixture f;
  ChurnInjector churn(f.net, {});
  bool was_up_at_notification = true;
  churn.add_observer([&](HostId h, ChurnEvent e) {
    if (e == ChurnEvent::kCrash) was_up_at_notification = f.net.host_up(h);
  });
  churn.kill(2, /*graceful=*/false);
  EXPECT_FALSE(was_up_at_notification);
  EXPECT_FALSE(f.net.host_up(2));
}

TEST(Churn, RecoveryHooksRunAfterUpBeforeJoinObservers) {
  // A rejoin must run the host's recovery hooks (store replay, broker
  // checkpoint restore) after the host is back up but before kJoin
  // observers fire, so overlay repair and workloads reacting to the
  // join see recovered state, not an empty node.
  NetFixture f;
  ChurnInjector churn(f.net, {});
  std::vector<std::string> order;
  churn.add_recovery_hook(2, [&](HostId h) {
    EXPECT_EQ(h, 2u);
    EXPECT_TRUE(f.net.host_up(2));  // host already up when hooks run
    order.push_back("recover-a");
  });
  churn.add_recovery_hook(2, [&](HostId) { order.push_back("recover-b"); });
  churn.add_recovery_hook(3, [&](HostId) { order.push_back("other-host"); });
  churn.add_observer([&](HostId h, ChurnEvent e) {
    if (e == ChurnEvent::kJoin) order.push_back("join-" + std::to_string(h));
  });
  churn.kill(2, /*graceful=*/false);
  churn.revive(2);
  // Hooks run in registration order, only for the rejoining host, and
  // strictly before the kJoin observers.
  EXPECT_EQ(order, (std::vector<std::string>{"recover-a", "recover-b", "join-2"}));
}

TEST(Churn, KillRespectsProtectedHosts) {
  NetFixture f;
  ChurnInjector churn(f.net, {});
  churn.start({2});
  churn.kill(2, /*graceful=*/false);
  churn.kill(2, /*graceful=*/true);
  EXPECT_TRUE(f.net.host_up(2));
  churn.kill(3, /*graceful=*/false);  // unprotected hosts still die
  EXPECT_FALSE(f.net.host_up(3));
  churn.stop();
}

TEST(Churn, RandomDeparturesRespectProtectedHosts) {
  NetFixture f;
  ChurnInjector::Params p;
  p.mean_departure_interval = duration::millis(10);
  p.seed = 3;
  ChurnInjector churn(f.net, p);
  churn.start({0});
  f.sched.run_until(duration::seconds(1));
  churn.stop();
  EXPECT_TRUE(f.net.host_up(0));  // protected host never dies
  EXPECT_GT(churn.departures(), 0);
}

TEST(Churn, NodesRejoinWhenDowntimeConfigured) {
  NetFixture f;
  ChurnInjector::Params p;
  p.mean_departure_interval = duration::millis(20);
  p.mean_downtime = duration::millis(5);
  p.seed = 4;
  ChurnInjector churn(f.net, p);
  churn.start();
  f.sched.run_until(duration::seconds(2));
  churn.stop();
  EXPECT_GT(churn.joins(), 0);
}

// --- Metrics ---

TEST(Histogram, PercentilesExact) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.record(i);
  EXPECT_DOUBLE_EQ(h.min(), 1);
  EXPECT_DOUBLE_EQ(h.max(), 100);
  EXPECT_NEAR(h.median(), 50.5, 0.01);
  EXPECT_NEAR(h.percentile(99), 99.01, 0.1);
  EXPECT_DOUBLE_EQ(h.mean(), 50.5);
}

TEST(Histogram, EmptyIsSafe) {
  Histogram h;
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);
}

TEST(Metrics, CountersAccumulate) {
  MetricsRegistry m;
  m.add("x");
  m.add("x", 4);
  EXPECT_EQ(m.counter("x"), 5u);
  EXPECT_EQ(m.counter("missing"), 0u);
}

}  // namespace
}  // namespace aa::sim
