// Unit tests for the discrete-event simulator: scheduler semantics,
// network delivery and accounting, churn injection, metrics.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/churn.hpp"
#include "sim/metrics.hpp"
#include "sim/network.hpp"
#include "sim/reliable.hpp"
#include "sim/scheduler.hpp"
#include "sim/topology.hpp"

namespace aa::sim {
namespace {

// --- Scheduler ---

TEST(Scheduler, ExecutesInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.after(300, [&] { order.push_back(3); });
  s.after(100, [&] { order.push_back(1); });
  s.after(200, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 300);
}

TEST(Scheduler, FifoAmongEqualTimes) {
  Scheduler s;
  std::vector<int> order;
  s.after(100, [&] { order.push_back(1); });
  s.after(100, [&] { order.push_back(2); });
  s.after(100, [&] { order.push_back(3); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Scheduler, NestedSchedulingFromHandlers) {
  Scheduler s;
  std::vector<std::string> log;
  s.after(10, [&] {
    log.push_back("a");
    s.after(5, [&] { log.push_back("b"); });
  });
  s.run();
  EXPECT_EQ(log, (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(s.now(), 15);
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler s;
  bool ran = false;
  const TaskId id = s.after(10, [&] { ran = true; });
  s.cancel(id);
  s.run();
  EXPECT_FALSE(ran);
}

TEST(Scheduler, RunUntilLeavesLaterEvents) {
  Scheduler s;
  int count = 0;
  s.after(10, [&] { ++count; });
  s.after(100, [&] { ++count; });
  s.run_until(50);
  EXPECT_EQ(count, 1);
  EXPECT_EQ(s.now(), 50);
  s.run();
  EXPECT_EQ(count, 2);
}

TEST(Scheduler, PeriodicTaskRepeatsUntilCancelled) {
  Scheduler s;
  int fires = 0;
  const TaskId id = s.every(10, [&] { ++fires; });
  s.run_until(55);
  EXPECT_EQ(fires, 5);
  s.cancel(id);
  s.run_until(200);
  EXPECT_EQ(fires, 5);
}

TEST(Scheduler, PeriodicTaskCanCancelItself) {
  Scheduler s;
  int fires = 0;
  TaskId id = kInvalidTask;
  id = s.every(10, [&] {
    if (++fires == 3) s.cancel(id);
  });
  s.run_until(500);
  EXPECT_EQ(fires, 3);
}

TEST(Scheduler, CancelReleasesPeriodicCallbackState) {
  // Regression: every()'s tick closure used to hold a shared_ptr to
  // itself, so a periodic task and everything it captured leaked for
  // the life of the process even after cancel().
  Scheduler s;
  auto state = std::make_shared<int>(7);
  std::weak_ptr<int> observer = state;
  const TaskId id = s.every(10, [state] { (void)*state; });
  state.reset();
  s.run_until(35);
  EXPECT_FALSE(observer.expired());  // still alive while scheduled
  s.cancel(id);
  EXPECT_TRUE(observer.expired());  // cancel frees the captured state
}

TEST(Scheduler, DestructionReleasesPeriodicCallbackState) {
  auto state = std::make_shared<int>(7);
  std::weak_ptr<int> observer = state;
  {
    Scheduler s;
    s.every(10, [state] { (void)*state; });
    state.reset();
    s.run_until(35);
    EXPECT_FALSE(observer.expired());
  }
  EXPECT_TRUE(observer.expired());  // scheduler teardown frees the task
}

TEST(Scheduler, PastTimesClampToNow) {
  Scheduler s;
  s.after(100, [&] {
    s.at(5, [&] { EXPECT_GE(s.now(), 100); });
  });
  s.run();
}

TEST(Scheduler, PendingSurvivesCancellingAlreadyRanTask) {
  // Regression: cancel() of a one-shot task that had already executed
  // parked its id in the cancelled set forever, so pending() computed
  // queue_size - cancelled_size and underflowed size_t once cancels
  // outnumbered queued entries.
  Scheduler s;
  const TaskId a = s.after(10, [] {});
  const TaskId b = s.after(20, [] {});
  s.run();
  s.cancel(a);  // already ran: must be a no-op
  s.cancel(b);
  EXPECT_EQ(s.pending(), 0u);
  s.after(30, [] {});
  EXPECT_EQ(s.pending(), 1u);  // underflowed to ~2^64 on the old code
  s.run();
  EXPECT_EQ(s.pending(), 0u);
}

TEST(Scheduler, EveryClampsNonPositivePeriodToOneTick) {
  // Regression: every(0) rescheduled at now + 0 forever, so run()
  // livelocked at a frozen virtual time.  The period clamps to the 1us
  // tick floor instead, mirroring after()'s negative-delay clamp.
  Scheduler s;
  int ticks = 0;
  TaskId id = kInvalidTask;
  id = s.every(0, [&] {
    if (++ticks == 3) s.cancel(id);
  });
  s.run();
  EXPECT_EQ(ticks, 3);
  EXPECT_EQ(s.now(), 3);  // fired at t=1,2,3 — not pinned at t=0

  int neg = 0;
  TaskId nid = kInvalidTask;
  nid = s.every(-50, [&] {
    if (++neg == 2) s.cancel(nid);
  });
  s.run();
  EXPECT_EQ(neg, 2);
  EXPECT_EQ(s.now(), 5);  // clamped ticks at t=4,5
}

TEST(Scheduler, StepMovesClosureOutWithoutCopying) {
  // Regression (perf): step() used to copy the whole queue entry —
  // including the std::function and its captured state — out of
  // queue_.top() for every executed event.  Execution must move the
  // closure instead.
  struct Probe {
    std::shared_ptr<int> copies;
    explicit Probe(std::shared_ptr<int> c) : copies(std::move(c)) {}
    Probe(const Probe& other) : copies(other.copies) { ++*copies; }
    Probe(Probe&&) noexcept = default;
  };
  Scheduler s;
  auto copies = std::make_shared<int>(0);
  bool ran = false;
  s.after(10, [p = Probe(copies), &ran] { ran = true; (void)p; });
  const int copies_after_scheduling = *copies;
  while (s.step()) {
  }
  EXPECT_TRUE(ran);
  EXPECT_EQ(*copies, copies_after_scheduling);  // execution added none
}

// --- Topologies ---

// --- Sharded parallel execution ---
//
// The determinism contract (DESIGN.md): the sharded scheduler executes
// the exact same event sequence as the sequential one, so any digest of
// the run — per-host logs, counters, final clock — must be bit-identical
// across shard counts.

namespace {

// Hosts pass a token around the ring with cross-host hops exactly at
// the lookahead (the tightest legal arrival) while also running local
// sub-lookahead ticks, exercising both the epoch barrier and the
// intra-shard fast path.
struct ShardProbe {
  Scheduler sched;
  std::vector<std::vector<std::string>> logs{4};

  void relay(std::uint32_t h, int hops) {
    logs[h].push_back(std::to_string(sched.now()) + ">" + std::to_string(hops));
    sched.after(1, [this, h, hops] {
      logs[h].push_back(std::to_string(sched.now()) + "+t" + std::to_string(hops));
    });
    if (hops > 0) {
      const std::uint32_t next = (h + 1) % 4;
      sched.post_to_host(next, sched.now() + 5,
                         [this, next, hops] { relay(next, hops - 1); });
    }
  }
};

struct ShardRun {
  std::vector<std::string> log;
  std::uint64_t executed = 0;
  SimTime final_now = 0;
};

ShardRun sharded_ring_run(std::uint32_t shards) {
  ShardProbe p;
  p.sched.bind_hosts(4);
  if (shards > 1) {
    std::vector<std::uint32_t> map(4);
    for (std::uint32_t h = 0; h < 4; ++h) map[h] = h % shards;
    p.sched.set_parallel(shards, map, 5);
  }
  EXPECT_EQ(p.sched.shards(), shards);
  for (std::uint32_t h = 0; h < 4; ++h) {
    p.sched.post_to_host(h, 10 + h, [&p, h] { p.relay(h, 25); });
  }
  ShardRun r;
  r.final_now = p.sched.run();
  r.executed = p.sched.executed_events();
  EXPECT_EQ(p.sched.pending(), 0u);
  for (std::uint32_t h = 0; h < 4; ++h) {
    for (const std::string& line : p.logs[h]) {
      r.log.push_back("h" + std::to_string(h) + ":" + line);
    }
  }
  return r;
}

}  // namespace

TEST(Parallel, ShardedSchedulerMatchesSequentialBitForBit) {
  const ShardRun seq = sharded_ring_run(1);
  ASSERT_FALSE(seq.log.empty());
  for (std::uint32_t shards : {2u, 4u}) {
    const ShardRun par = sharded_ring_run(shards);
    EXPECT_EQ(par.log, seq.log) << shards << " shards";
    EXPECT_EQ(par.executed, seq.executed) << shards << " shards";
    EXPECT_EQ(par.final_now, seq.final_now) << shards << " shards";
  }
}

namespace {

struct MeshRun {
  std::vector<std::string> log;
  NetworkStats stats;
};

// A faulty relay mesh: every delivery re-sends from the destination's
// own event (so sends execute on many shards, drawing from per-source
// fault streams), with drops, duplicates and reordering all active.
MeshRun faulty_mesh_run(unsigned threads) {
  Scheduler sched;
  auto topo = std::make_shared<UniformTopology>(6, duration::millis(2));
  Network net(sched, topo);
  LinkFaults f;
  f.drop = 0.15;
  f.duplicate = 0.05;
  f.reorder = 0.2;
  f.jitter = duration::millis(1);
  f.seed = 99;
  net.set_link_faults(f);
  net.set_threads(threads);
  std::vector<std::vector<std::string>> logs(6);
  for (HostId h = 0; h < 6; ++h) {
    net.register_handler(h, "relay", [&net, &sched, &logs, h](const Packet& pk) {
      const int ttl = *packet_body<int>(pk);
      logs[h].push_back(std::to_string(sched.now()) + "<h" + std::to_string(pk.src) +
                        ":" + std::to_string(ttl));
      if (ttl > 0) net.send(h, (h + 2) % 6, "relay", ttl - 1, 64);
    });
  }
  for (HostId h = 0; h < 6; ++h) {
    sched.at(1 + h, [&net, h] { net.send(h, (h + 1) % 6, "relay", 20, 64); });
  }
  sched.run();
  MeshRun r;
  r.stats = net.stats();
  for (HostId h = 0; h < 6; ++h) {
    for (const std::string& line : logs[h]) {
      r.log.push_back("h" + std::to_string(h) + ":" + line);
    }
  }
  return r;
}

}  // namespace

TEST(Parallel, ShardedNetworkDeliveriesAndStatsMatchSequential) {
  const MeshRun seq = faulty_mesh_run(1);
  ASSERT_FALSE(seq.log.empty());
  ASSERT_GT(seq.stats.dropped_by_fault, 0u);  // the faults were live
  for (unsigned threads : {2u, 3u, 6u}) {
    const MeshRun par = faulty_mesh_run(threads);
    EXPECT_EQ(par.log, seq.log) << threads << " threads";
    EXPECT_EQ(par.stats.messages_sent, seq.stats.messages_sent) << threads;
    EXPECT_EQ(par.stats.messages_delivered, seq.stats.messages_delivered) << threads;
    EXPECT_EQ(par.stats.messages_dropped, seq.stats.messages_dropped) << threads;
    EXPECT_EQ(par.stats.bytes_sent, seq.stats.bytes_sent) << threads;
    EXPECT_EQ(par.stats.duplicated, seq.stats.duplicated) << threads;
    EXPECT_EQ(par.stats.dropped_by_fault, seq.stats.dropped_by_fault) << threads;
  }
}

TEST(Parallel, ModeSwitchPreservesPendingWork) {
  // Tasks queued in one mode must survive repartitioning: switch to
  // sharded mid-workload and back, and everything still runs once.
  Scheduler sched;
  sched.bind_hosts(4);
  int ran = 0;
  std::vector<std::uint32_t> map{0, 0, 1, 1};
  for (std::uint32_t h = 0; h < 4; ++h) {
    sched.post_to_host(h, 50, [&ran] { ++ran; });
  }
  const TaskId doomed = sched.after(60, [&ran] { ++ran; });
  const TaskId tick = sched.every(25, [&ran] { ++ran; });
  sched.cancel(doomed);
  EXPECT_EQ(sched.pending(), 5u);  // 4 posts + tick; the cancelled one-shot is out
  sched.set_parallel(2, map, 5);
  EXPECT_EQ(sched.pending(), 5u);
  sched.run_until(55);
  EXPECT_EQ(ran, 6);  // 4 posts + 2 periodic firings; doomed never ran
  sched.set_parallel(1, {}, 1);
  sched.run_until(100);
  EXPECT_EQ(ran, 8);  // periodic continued at 75, 100 across the switch
  sched.cancel(tick);
  EXPECT_EQ(sched.pending(), 0u);
}

TEST(Parallel, TracingComposesWithSharding) {
  // The ambient trace context is slot-local (one per scheduler shard),
  // so tracing no longer forces sequential execution: enabling it keeps
  // the shard count, and set_threads keeps working while tracing is on.
  Scheduler sched;
  auto topo = std::make_shared<UniformTopology>(4, duration::millis(2));
  Network net(sched, topo);
  net.set_threads(4);
  EXPECT_EQ(net.threads(), 4u);
  net.enable_tracing();
  EXPECT_EQ(net.threads(), 4u);
  net.set_threads(2);
  EXPECT_EQ(net.threads(), 2u);
  EXPECT_TRUE(net.tracing_enabled());
  net.disable_tracing();
  net.set_threads(4);
  EXPECT_EQ(net.threads(), 4u);
}

TEST(Topology, UniformLatency) {
  UniformTopology t(4, duration::millis(10));
  EXPECT_EQ(t.latency(0, 1), duration::millis(10));
  EXPECT_EQ(t.latency(2, 3), duration::millis(10));
  EXPECT_LT(t.latency(1, 1), duration::millis(1));
}

TEST(Topology, EuclideanSymmetricAndDeterministic) {
  EuclideanTopology t1(16, 100.0, duration::millis(1), duration::micros(50), 42);
  EuclideanTopology t2(16, 100.0, duration::millis(1), duration::micros(50), 42);
  for (HostId a = 0; a < 16; ++a) {
    for (HostId b = 0; b < 16; ++b) {
      EXPECT_EQ(t1.latency(a, b), t1.latency(b, a));
      EXPECT_EQ(t1.latency(a, b), t2.latency(a, b));
    }
  }
}

TEST(Topology, TransitStubIntraCheaperThanInter) {
  TransitStubTopology::Params p;
  p.regions = 4;
  TransitStubTopology t(16, p);
  // Hosts 0 and 4 share region 0; hosts 0 and 1 are in different regions.
  EXPECT_EQ(t.region_of(0), t.region_of(4));
  EXPECT_NE(t.region_of(0), t.region_of(1));
  EXPECT_LT(t.latency(0, 4), t.latency(0, 1));
}

// --- Network ---

struct NetFixture {
  Scheduler sched;
  std::shared_ptr<UniformTopology> topo = std::make_shared<UniformTopology>(8, 1000);
  Network net{sched, topo};
};

TEST(Network, DeliversAfterLatency) {
  NetFixture f;
  SimTime delivered_at = -1;
  f.net.register_handler(1, "test", [&](const Packet&) { delivered_at = f.sched.now(); });
  f.net.send(0, 1, "test", std::string("hi"), 100);
  f.sched.run();
  EXPECT_GE(delivered_at, 1000);
}

TEST(Network, BodyTypePreserved) {
  NetFixture f;
  std::string got;
  f.net.register_handler(1, "test", [&](const Packet& p) {
    const auto* body = packet_body<std::string>(p);
    ASSERT_NE(body, nullptr);
    got = *body;
  });
  f.net.send(0, 1, "test", std::string("payload"), 10);
  f.sched.run();
  EXPECT_EQ(got, "payload");
}

TEST(Network, DropsWhenDestinationDown) {
  NetFixture f;
  int received = 0;
  f.net.register_handler(1, "test", [&](const Packet&) { ++received; });
  f.net.set_host_up(1, false);
  f.net.send(0, 1, "test", 1, 10);
  f.sched.run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(f.net.stats().messages_dropped, 1u);
}

TEST(Network, DropsInFlightWhenDestinationDiesBeforeDelivery) {
  NetFixture f;
  int received = 0;
  f.net.register_handler(1, "test", [&](const Packet&) { ++received; });
  f.net.send(0, 1, "test", 1, 10);
  f.sched.after(10, [&] { f.net.set_host_up(1, false); });  // dies mid-flight
  f.sched.run();
  EXPECT_EQ(received, 0);
}

TEST(Network, CountsBytesAndMessages) {
  NetFixture f;
  f.net.register_handler(1, "test", [](const Packet&) {});
  f.net.send(0, 1, "test", 1, 250);
  f.net.send(0, 1, "test", 2, 750);
  f.sched.run();
  EXPECT_EQ(f.net.stats().messages_sent, 2u);
  EXPECT_EQ(f.net.stats().messages_delivered, 2u);
  EXPECT_EQ(f.net.stats().bytes_sent, 1000u);
  EXPECT_EQ(f.net.delivered_to(1), 2u);
}

TEST(Network, SourceDropsAreNotCountedAsTraffic) {
  // A packet refused at the source (host down / id out of range) never
  // reaches the wire: it must count as a drop, not as sent traffic,
  // or bytes-per-delivery metrics skew under churn.
  NetFixture f;
  f.net.register_handler(1, "test", [](const Packet&) {});
  f.net.set_host_up(0, false);
  f.net.send(0, 1, "test", 1, 500);
  f.net.send(42, 1, "test", 1, 500);  // src out of range
  f.sched.run();
  EXPECT_EQ(f.net.stats().messages_sent, 0u);
  EXPECT_EQ(f.net.stats().bytes_sent, 0u);
  EXPECT_EQ(f.net.stats().messages_dropped, 2u);
}

TEST(Network, NoHandlerCountsAsDrop) {
  NetFixture f;
  f.net.send(0, 1, "nobody", 1, 10);
  f.sched.run();
  EXPECT_EQ(f.net.stats().messages_dropped, 1u);
}

TEST(Network, LiveHostsReflectsState) {
  NetFixture f;
  EXPECT_EQ(f.net.live_hosts().size(), 8u);
  f.net.set_host_up(3, false);
  EXPECT_EQ(f.net.live_hosts().size(), 7u);
}

TEST(Network, LinkIsFifoEvenAcrossSizes) {
  // A small message sent after a large one on the same link must not
  // overtake it (TCP-like per-link ordering).
  NetFixture f;
  std::vector<int> order;
  f.net.register_handler(1, "t", [&](const Packet& p) {
    order.push_back(*packet_body<int>(p));
  });
  f.net.send(0, 1, "t", 1, 1000000);  // large: 10 ms transmission
  f.net.send(0, 1, "t", 2, 1);        // tiny
  f.sched.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Network, DistinctLinksDoNotSerialise) {
  NetFixture f;
  std::vector<int> order;
  for (HostId h : {1u, 2u}) {
    f.net.register_handler(h, "t", [&](const Packet& p) {
      order.push_back(*packet_body<int>(p));
    });
  }
  f.net.send(0, 1, "t", 1, 1000000);  // large, to host 1
  f.net.send(0, 2, "t", 2, 1);        // tiny, to host 2: separate link
  f.sched.run();
  EXPECT_EQ(order, (std::vector<int>{2, 1}));
}

TEST(Network, TransmissionTimeAddsToLatency) {
  NetFixture f;  // bandwidth default: 100 bytes/us
  SimTime small_t = 0, big_t = 0;
  f.net.register_handler(1, "s", [&](const Packet&) { small_t = f.sched.now(); });
  f.net.register_handler(2, "b", [&](const Packet&) { big_t = f.sched.now(); });
  f.net.send(0, 1, "s", 1, 100);       // 1 us tx
  f.net.send(0, 2, "b", 1, 100000);    // 1000 us tx
  f.sched.run();
  EXPECT_GT(big_t, small_t);
}

// --- Link faults ---

TEST(LinkFaults, DropFaultLosesPacketsAndCounts) {
  NetFixture f;
  int received = 0;
  f.net.register_handler(1, "t", [&](const Packet&) { ++received; });
  f.net.set_link_faults({.drop = 1.0});
  f.net.send(0, 1, "t", 1, 10);
  f.sched.run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(f.net.stats().dropped_by_fault, 1u);
  EXPECT_EQ(f.net.stats().messages_sent, 1u);  // it did reach the wire
  EXPECT_EQ(f.net.stats().messages_delivered, 0u);
}

TEST(LinkFaults, LoopbackIsExempt) {
  NetFixture f;
  int received = 0;
  f.net.register_handler(0, "t", [&](const Packet&) { ++received; });
  f.net.set_link_faults({.drop = 1.0, .duplicate = 1.0});
  f.net.send(0, 0, "t", 1, 10);
  f.sched.run();
  EXPECT_EQ(received, 1);
  EXPECT_EQ(f.net.stats().dropped_by_fault, 0u);
  EXPECT_EQ(f.net.stats().duplicated, 0u);
}

TEST(LinkFaults, DuplicateDeliversTwice) {
  NetFixture f;
  int received = 0;
  f.net.register_handler(1, "t", [&](const Packet&) { ++received; });
  f.net.set_link_faults({.duplicate = 1.0});
  f.net.send(0, 1, "t", 1, 10);
  f.sched.run();
  EXPECT_EQ(received, 2);
  EXPECT_EQ(f.net.stats().duplicated, 1u);
  EXPECT_EQ(f.net.stats().messages_sent, 1u);
}

TEST(LinkFaults, ReorderBypassesLinkFifo) {
  // With reordering forced on and no jitter, a tiny packet sent after a
  // large one arrives first: each packet pays only its own transmission
  // time instead of queueing behind the link.
  NetFixture f;
  std::vector<int> order;
  f.net.register_handler(1, "t", [&](const Packet& p) {
    order.push_back(*packet_body<int>(p));
  });
  f.net.set_link_faults({.reorder = 1.0, .jitter = 0});
  f.net.send(0, 1, "t", 1, 1000000);  // large: 10 ms transmission
  f.net.send(0, 1, "t", 2, 1);        // tiny: overtakes
  f.sched.run();
  EXPECT_EQ(order, (std::vector<int>{2, 1}));
}

TEST(LinkFaults, PerLinkOverrideWinsOverDefault) {
  NetFixture f;
  int to_1 = 0, to_2 = 0;
  f.net.register_handler(1, "t", [&](const Packet&) { ++to_1; });
  f.net.register_handler(2, "t", [&](const Packet&) { ++to_2; });
  f.net.set_link_faults({.drop = 1.0});
  f.net.set_link_faults(0, 1, LinkFaults{});  // clean override inside a lossy net
  f.net.send(0, 1, "t", 1, 10);
  f.net.send(0, 2, "t", 1, 10);
  f.sched.run();
  EXPECT_EQ(to_1, 1);
  EXPECT_EQ(to_2, 0);
  f.net.clear_link_faults();
  f.net.send(0, 2, "t", 1, 10);
  f.sched.run();
  EXPECT_EQ(to_2, 1);
}

TEST(LinkFaults, KilledLinkDropsEverything) {
  NetFixture f;
  int received = 0;
  f.net.register_handler(1, "t", [&](const Packet&) { ++received; });
  f.net.set_link_faults(0, 1, {.drop = 1.0});
  for (int i = 0; i < 10; ++i) f.net.send(0, 1, "t", i, 10);
  f.sched.run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(f.net.stats().dropped_by_fault, 10u);
}

TEST(LinkFaults, FaultsAreDeterministicPerSeed) {
  auto run = [](std::uint64_t seed) {
    NetFixture f;
    std::vector<int> got;
    f.net.register_handler(1, "t", [&](const Packet& p) {
      got.push_back(*packet_body<int>(p));
    });
    f.net.set_link_faults(
        {.drop = 0.3, .duplicate = 0.2, .reorder = 0.3, .jitter = 2000, .seed = seed});
    for (int i = 0; i < 200; ++i) f.net.send(0, 1, "t", i, 100);
    f.sched.run();
    return got;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}

TEST(Partition, BlocksBothDirectionsUntilHealed) {
  NetFixture f;
  int received = 0;
  f.net.register_handler(1, "t", [&](const Packet&) { ++received; });
  f.net.register_handler(0, "t", [&](const Packet&) { ++received; });
  f.net.partition("cut", {0, 2}, {1, 3});
  EXPECT_TRUE(f.net.partitioned(0, 1));
  EXPECT_TRUE(f.net.partitioned(1, 0));
  EXPECT_TRUE(f.net.partitioned(3, 2));
  EXPECT_FALSE(f.net.partitioned(0, 2));  // same side
  f.net.send(0, 1, "t", 1, 10);
  f.net.send(1, 0, "t", 1, 10);
  f.sched.run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(f.net.stats().dropped_by_fault, 2u);
  f.net.heal("cut");
  EXPECT_FALSE(f.net.partitioned(0, 1));
  f.net.send(0, 1, "t", 1, 10);
  f.sched.run();
  EXPECT_EQ(received, 1);
}

TEST(Partition, NamedPartitionsHealIndependently) {
  NetFixture f;
  f.net.partition("a", {0}, {1});
  f.net.partition("b", {0}, {2});
  f.net.heal("a");
  EXPECT_FALSE(f.net.partitioned(0, 1));
  EXPECT_TRUE(f.net.partitioned(0, 2));
  f.net.heal();  // heal-all clears the rest
  EXPECT_FALSE(f.net.partitioned(0, 2));
}

TEST(Partition, InFlightPacketsStillArrive) {
  // Cutting a link mid-flight does not destroy packets already on the
  // wire — only new sends are blocked, as on a real network.
  NetFixture f;
  int received = 0;
  f.net.register_handler(1, "t", [&](const Packet&) { ++received; });
  f.net.send(0, 1, "t", 1, 10);
  f.sched.after(10, [&] { f.net.partition("cut", {0}, {1}); });
  f.sched.run();
  EXPECT_EQ(received, 1);
}

TEST(Network, InFlightPacketNotDeliveredToReincarnatedHost) {
  // The destination crashes and rejoins while the packet is in flight:
  // the reincarnated host is a fresh endpoint and must not receive
  // traffic addressed to its previous life.
  NetFixture f;
  int received = 0;
  f.net.register_handler(1, "t", [&](const Packet&) { ++received; });
  f.net.send(0, 1, "t", 1, 10);  // arrives at ~1000 us
  f.sched.after(10, [&] { f.net.set_host_up(1, false); });
  f.sched.after(20, [&] { f.net.set_host_up(1, true); });
  f.sched.run();
  EXPECT_TRUE(f.net.host_up(1));
  EXPECT_EQ(received, 0);
  EXPECT_EQ(f.net.stats().messages_dropped, 1u);
  // A packet sent to the new incarnation arrives normally.
  f.net.send(0, 1, "t", 2, 10);
  f.sched.run();
  EXPECT_EQ(received, 1);
}

// --- Reliable transport ---

TEST(ReliableTransport, ExactlyOnceUnderHeavyLoss) {
  NetFixture f;
  f.net.set_link_faults(
      {.drop = 0.4, .duplicate = 0.3, .reorder = 0.3, .jitter = 2000, .seed = 11});
  ReliableParams rp;
  rp.initial_rto = duration::millis(5);
  rp.max_rto = duration::millis(50);
  rp.max_retries = 40;
  ReliableTransport rt(f.net, "rel", rp);
  std::map<int, int> got;
  rt.register_handler(1, [&](const Packet& p) { ++got[*packet_body<int>(p)]; });
  for (int i = 0; i < 50; ++i) rt.send(0, 1, i, 100);
  f.sched.run();
  ASSERT_EQ(got.size(), 50u);
  for (const auto& [msg, count] : got) EXPECT_EQ(count, 1) << "message " << msg;
  EXPECT_EQ(rt.in_flight(), 0u);
  EXPECT_EQ(rt.stats().give_ups, 0u);
  EXPECT_GT(rt.stats().retransmits, 0u);
  // Retries are visible in the network-wide counters too.
  EXPECT_EQ(f.net.stats().retransmits, rt.stats().retransmits);
}

TEST(ReliableTransport, DeliveredPacketCarriesOriginalBodyAndSender) {
  NetFixture f;
  ReliableTransport rt(f.net, "rel");
  Packet seen;
  rt.register_handler(2, [&](const Packet& p) { seen = p; });
  rt.send(3, 2, std::string("payload"), 77);
  f.sched.run();
  EXPECT_EQ(seen.src, 3u);
  EXPECT_EQ(seen.dst, 2u);
  EXPECT_EQ(seen.wire_size, 77u);
  const auto* body = packet_body<std::string>(seen);
  ASSERT_NE(body, nullptr);
  EXPECT_EQ(*body, "payload");
}

TEST(ReliableTransport, RetransmitsAcrossPartitionUntilHealed) {
  NetFixture f;
  ReliableParams rp;
  rp.initial_rto = duration::millis(10);
  rp.max_rto = duration::millis(100);
  rp.max_retries = 40;
  ReliableTransport rt(f.net, "rel", rp);
  int got = 0;
  rt.register_handler(1, [&](const Packet&) { ++got; });
  f.net.partition("cut", {0}, {1});
  rt.send(0, 1, 42, 100);
  f.sched.after(duration::millis(300), [&] { f.net.heal("cut"); });
  f.sched.run();
  EXPECT_EQ(got, 1);
  EXPECT_EQ(rt.stats().give_ups, 0u);
  EXPECT_GT(rt.stats().retransmits, 0u);
  EXPECT_EQ(rt.in_flight(), 0u);
}

TEST(ReliableTransport, GivesUpAfterRetryCapWhenPeerIsDown) {
  NetFixture f;
  ReliableParams rp;
  rp.initial_rto = duration::millis(5);
  rp.max_rto = duration::millis(10);
  rp.max_retries = 3;
  ReliableTransport rt(f.net, "rel", rp);
  rt.register_handler(1, [](const Packet&) {});
  f.net.set_host_up(1, false);
  int gave_up = 0;
  Packet lost;
  rt.set_give_up([&](const Packet& p) {
    ++gave_up;
    lost = p;
  });
  rt.send(0, 1, std::string("x"), 50);
  f.sched.run();
  EXPECT_EQ(gave_up, 1);
  EXPECT_EQ(lost.dst, 1u);
  EXPECT_EQ(rt.stats().give_ups, 1u);
  EXPECT_EQ(rt.stats().retransmits, 3u);
  EXPECT_EQ(rt.in_flight(), 0u);
}

TEST(ReliableTransport, GivesUpPromptlyWhenPeerReincarnates) {
  // Regression: the transport used to burn the full retry budget against
  // a peer that had crashed and rejoined, even though the reincarnated
  // endpoint can never ack the old send.  The incarnation recorded at
  // send time must trigger a give-up at the first retry after the bump.
  NetFixture f;
  ReliableParams rp;
  rp.initial_rto = duration::millis(10);
  rp.max_rto = duration::millis(10);
  rp.max_retries = 1000;  // a full-budget wait would run ~10 s
  ReliableTransport rt(f.net, "rel", rp);
  rt.register_handler(1, [](const Packet&) {});
  int gave_up = 0;
  rt.set_give_up([&](const Packet&) { ++gave_up; });
  f.net.partition("cut", {0}, {1});  // the send and retries all drop
  rt.send(0, 1, 7, 50);
  f.sched.after(duration::millis(25), [&] {
    f.net.set_host_up(1, false);  // crash bumps the incarnation
    f.net.set_host_up(1, true);
    f.net.heal("cut");
  });
  f.sched.run();
  EXPECT_EQ(gave_up, 1);
  EXPECT_EQ(rt.stats().incarnation_give_ups, 1u);
  EXPECT_EQ(rt.stats().give_ups, 1u);
  EXPECT_LT(rt.stats().retransmits, 6u);  // gave up promptly, not at cap
  EXPECT_EQ(rt.in_flight(), 0u);
  // The scheduler drained in well under the full-budget horizon.
  EXPECT_LT(f.sched.now(), duration::seconds(1));
}

TEST(ReliableTransport, SameIncarnationStillRetriesToCap) {
  // Control for the above: a peer that is merely unreachable (same
  // incarnation) must still get the whole retry budget.
  NetFixture f;
  ReliableParams rp;
  rp.initial_rto = duration::millis(5);
  rp.max_rto = duration::millis(5);
  rp.max_retries = 4;
  ReliableTransport rt(f.net, "rel", rp);
  rt.register_handler(1, [](const Packet&) {});
  f.net.partition("cut", {0}, {1});
  rt.send(0, 1, 7, 50);
  f.sched.run();
  EXPECT_EQ(rt.stats().retransmits, 4u);
  EXPECT_EQ(rt.stats().give_ups, 1u);
  EXPECT_EQ(rt.stats().incarnation_give_ups, 0u);
}

// --- Churn ---

TEST(Churn, DirectedKillAndRevive) {
  NetFixture f;
  ChurnInjector churn(f.net, {});
  std::vector<std::pair<HostId, ChurnEvent>> events;
  churn.add_observer([&](HostId h, ChurnEvent e) { events.emplace_back(h, e); });
  churn.kill(2, /*graceful=*/false);
  EXPECT_FALSE(f.net.host_up(2));
  churn.revive(2);
  EXPECT_TRUE(f.net.host_up(2));
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].second, ChurnEvent::kCrash);
  EXPECT_EQ(events[1].second, ChurnEvent::kJoin);
}

TEST(Churn, GracefulLeaveNotifiesBeforeDown) {
  NetFixture f;
  ChurnInjector churn(f.net, {});
  bool was_up_at_notification = false;
  churn.add_observer([&](HostId h, ChurnEvent e) {
    if (e == ChurnEvent::kGracefulLeave) was_up_at_notification = f.net.host_up(h);
  });
  churn.kill(2, /*graceful=*/true);
  EXPECT_TRUE(was_up_at_notification);
  EXPECT_FALSE(f.net.host_up(2));
}

TEST(Churn, CrashNotifiesAfterDown) {
  NetFixture f;
  ChurnInjector churn(f.net, {});
  bool was_up_at_notification = true;
  churn.add_observer([&](HostId h, ChurnEvent e) {
    if (e == ChurnEvent::kCrash) was_up_at_notification = f.net.host_up(h);
  });
  churn.kill(2, /*graceful=*/false);
  EXPECT_FALSE(was_up_at_notification);
  EXPECT_FALSE(f.net.host_up(2));
}

TEST(Churn, RecoveryHooksRunAfterUpBeforeJoinObservers) {
  // A rejoin must run the host's recovery hooks (store replay, broker
  // checkpoint restore) after the host is back up but before kJoin
  // observers fire, so overlay repair and workloads reacting to the
  // join see recovered state, not an empty node.
  NetFixture f;
  ChurnInjector churn(f.net, {});
  std::vector<std::string> order;
  churn.add_recovery_hook(2, [&](HostId h) {
    EXPECT_EQ(h, 2u);
    EXPECT_TRUE(f.net.host_up(2));  // host already up when hooks run
    order.push_back("recover-a");
  });
  churn.add_recovery_hook(2, [&](HostId) { order.push_back("recover-b"); });
  churn.add_recovery_hook(3, [&](HostId) { order.push_back("other-host"); });
  churn.add_observer([&](HostId h, ChurnEvent e) {
    if (e == ChurnEvent::kJoin) order.push_back("join-" + std::to_string(h));
  });
  churn.kill(2, /*graceful=*/false);
  churn.revive(2);
  // Hooks run in registration order, only for the rejoining host, and
  // strictly before the kJoin observers.
  EXPECT_EQ(order, (std::vector<std::string>{"recover-a", "recover-b", "join-2"}));
}

TEST(Churn, KillRespectsProtectedHosts) {
  NetFixture f;
  ChurnInjector churn(f.net, {});
  churn.start({2});
  churn.kill(2, /*graceful=*/false);
  churn.kill(2, /*graceful=*/true);
  EXPECT_TRUE(f.net.host_up(2));
  churn.kill(3, /*graceful=*/false);  // unprotected hosts still die
  EXPECT_FALSE(f.net.host_up(3));
  churn.stop();
}

TEST(Churn, RandomDeparturesRespectProtectedHosts) {
  NetFixture f;
  ChurnInjector::Params p;
  p.mean_departure_interval = duration::millis(10);
  p.seed = 3;
  ChurnInjector churn(f.net, p);
  churn.start({0});
  f.sched.run_until(duration::seconds(1));
  churn.stop();
  EXPECT_TRUE(f.net.host_up(0));  // protected host never dies
  EXPECT_GT(churn.departures(), 0);
}

TEST(Churn, NodesRejoinWhenDowntimeConfigured) {
  NetFixture f;
  ChurnInjector::Params p;
  p.mean_departure_interval = duration::millis(20);
  p.mean_downtime = duration::millis(5);
  p.seed = 4;
  ChurnInjector churn(f.net, p);
  churn.start();
  f.sched.run_until(duration::seconds(2));
  churn.stop();
  EXPECT_GT(churn.joins(), 0);
}

// --- Metrics ---

TEST(Histogram, PercentilesExact) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.record(i);
  EXPECT_DOUBLE_EQ(h.min(), 1);
  EXPECT_DOUBLE_EQ(h.max(), 100);
  EXPECT_NEAR(h.median(), 50.5, 0.01);
  EXPECT_NEAR(h.percentile(99), 99.01, 0.1);
  EXPECT_DOUBLE_EQ(h.mean(), 50.5);
}

TEST(Histogram, EmptyIsSafe) {
  Histogram h;
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);
}

TEST(Metrics, CountersAccumulate) {
  MetricsRegistry m;
  m.add("x");
  m.add("x", 4);
  EXPECT_EQ(m.counter("x"), 5u);
  EXPECT_EQ(m.counter("missing"), 0u);
}

// --- Per-link batching (Network::enable_batching) ---

TEST(Batching, CoalescesSameWindowSendsIntoOneFrame) {
  NetFixture f;
  std::vector<int> got;
  f.net.register_handler(1, "t", [&](const Packet& p) { got.push_back(*packet_body<int>(p)); });
  f.net.enable_batching();
  f.net.send(0, 1, "t", 1, 100);
  f.net.send(0, 1, "t", 2, 100);
  f.net.send(0, 1, "t", 3, 100);
  f.sched.run();
  EXPECT_EQ(got, (std::vector<int>{1, 2, 3}));  // member order preserved
  const NetworkStats s = f.net.stats();
  EXPECT_EQ(s.messages_sent, 3u);
  EXPECT_EQ(s.messages_delivered, 3u);
  EXPECT_EQ(s.frames_sent, 1u);
  EXPECT_EQ(s.batched_messages, 3u);
  EXPECT_EQ(s.batch_flushes, 1u);
  EXPECT_EQ(s.packets_sent(), 1u);  // one physical packet for 3 messages
}

TEST(Batching, SingleMessageFlushesAsPlainDatagram) {
  NetFixture f;
  int got = 0;
  f.net.register_handler(1, "t", [&](const Packet&) { ++got; });
  f.net.enable_batching();
  f.net.send(0, 1, "t", 1, 250);
  f.sched.run();
  EXPECT_EQ(got, 1);
  const NetworkStats s = f.net.stats();
  EXPECT_EQ(s.frames_sent, 0u);  // never inflated into a frame of one
  EXPECT_EQ(s.batched_messages, 0u);
  EXPECT_EQ(s.batch_flushes, 1u);
  EXPECT_EQ(s.bytes_sent, 250u);  // exact datagram cost, no envelope
  EXPECT_EQ(s.packets_sent(), 1u);
}

TEST(Batching, LoopbackBypassesStaging) {
  NetFixture f;
  int got = 0;
  f.net.register_handler(0, "t", [&](const Packet&) { ++got; });
  f.net.enable_batching();
  f.net.send(0, 0, "t", 1, 10);
  f.sched.run();
  EXPECT_EQ(got, 1);
  EXPECT_EQ(f.net.stats().batch_flushes, 0u);
}

TEST(Batching, DistinctLinksGetDistinctFrames) {
  NetFixture f;
  int got = 0;
  for (HostId h = 1; h <= 2; ++h) {
    f.net.register_handler(h, "t", [&](const Packet&) { ++got; });
  }
  f.net.enable_batching();
  f.net.send(0, 1, "t", 1, 50);
  f.net.send(0, 1, "t", 2, 50);
  f.net.send(0, 2, "t", 3, 50);
  f.net.send(0, 2, "t", 4, 50);
  f.net.send(1, 2, "t", 5, 50);
  f.sched.run();
  EXPECT_EQ(got, 5);
  const NetworkStats s = f.net.stats();
  EXPECT_EQ(s.batch_flushes, 3u);  // (0,1), (0,2), (1,2)
  EXPECT_EQ(s.frames_sent, 2u);    // the two 2-member links
  EXPECT_EQ(s.batched_messages, 4u);
  EXPECT_EQ(s.packets_sent(), 3u);
}

TEST(Batching, DefaultSizerChargesSharedHeader) {
  NetFixture f;
  f.net.register_handler(1, "t", [](const Packet&) {});
  f.net.enable_batching();  // default model: 16 + per-member (size + 2)
  f.net.send(0, 1, "t", 1, 100);
  f.net.send(0, 1, "t", 2, 200);
  f.sched.run();
  EXPECT_EQ(f.net.stats().bytes_sent, 16u + (100 + 2) + (200 + 2));
}

TEST(Batching, CustomFrameSizerIsUsed) {
  NetFixture f;
  f.net.register_handler(1, "t", [](const Packet&) {});
  f.net.enable_batching(0, [](std::span<const std::size_t> sizes) {
    std::size_t total = 1000;  // deliberately weird model
    for (std::size_t d : sizes) total += d;
    return total;
  });
  f.net.send(0, 1, "t", 1, 10);
  f.net.send(0, 1, "t", 2, 20);
  f.sched.run();
  EXPECT_EQ(f.net.stats().bytes_sent, 1030u);
}

TEST(Batching, WindowDelaysFlush) {
  NetFixture f;  // link latency 1000
  SimTime delivered_at = -1;
  f.net.register_handler(1, "t", [&](const Packet&) { delivered_at = f.sched.now(); });
  f.net.enable_batching(500);
  f.net.send(0, 1, "t", 1, 10);
  f.sched.run();
  EXPECT_GE(delivered_at, 1500);  // staged 500, then the link latency
}

TEST(Batching, FaultDropLosesWholeFrame) {
  NetFixture f;
  int got = 0;
  f.net.register_handler(1, "t", [&](const Packet&) { ++got; });
  LinkFaults faults;
  faults.drop = 1.0;
  f.net.set_link_faults(faults);
  f.net.enable_batching();
  f.net.send(0, 1, "t", 1, 10);
  f.net.send(0, 1, "t", 2, 10);
  f.net.send(0, 1, "t", 3, 10);
  f.sched.run();
  EXPECT_EQ(got, 0);
  const NetworkStats s = f.net.stats();
  EXPECT_EQ(s.frames_sent, 1u);
  EXPECT_EQ(s.dropped_by_fault, 3u);  // one draw, three members lost
}

TEST(Batching, DuplicateCopiesWholeFrame) {
  NetFixture f;
  int got = 0;
  f.net.register_handler(1, "t", [&](const Packet&) { ++got; });
  LinkFaults faults;
  faults.duplicate = 1.0;
  f.net.set_link_faults(faults);
  f.net.enable_batching();
  f.net.send(0, 1, "t", 1, 10);
  f.net.send(0, 1, "t", 2, 10);
  f.sched.run();
  EXPECT_EQ(got, 4);  // both members arrive twice
  EXPECT_EQ(f.net.stats().duplicated, 2u);
}

TEST(Batching, SenderCrashBeforeFlushDropsStagedMembers) {
  NetFixture f;
  int got = 0;
  f.net.register_handler(1, "t", [&](const Packet&) { ++got; });
  f.net.enable_batching(500);
  f.net.send(0, 1, "t", 1, 10);
  f.sched.after(100, [&] { f.net.set_host_up(0, false); });
  f.sched.run();
  EXPECT_EQ(got, 0);
  EXPECT_EQ(f.net.stats().messages_dropped, 1u);
}

TEST(Batching, DisableRestoresDatagramPath) {
  NetFixture f;
  int got = 0;
  f.net.register_handler(1, "t", [&](const Packet&) { ++got; });
  f.net.enable_batching();
  f.net.disable_batching();
  f.net.send(0, 1, "t", 1, 10);
  f.net.send(0, 1, "t", 2, 10);
  f.sched.run();
  EXPECT_EQ(got, 2);
  EXPECT_EQ(f.net.stats().batch_flushes, 0u);
  EXPECT_EQ(f.net.stats().frames_sent, 0u);
}

// Batched fan-out must stay bit-identical across shard counts: flushes
// are posted to the staging host's shard, so member order, fault draws
// and counters cannot depend on thread interleaving.
TEST(Batching, DeterministicAcrossShards) {
  auto run = [](unsigned threads) {
    Scheduler sched;
    auto topo = std::make_shared<UniformTopology>(6, duration::millis(2));
    Network net(sched, topo);
    LinkFaults f;
    f.drop = 0.1;
    f.duplicate = 0.05;
    f.seed = 7;
    net.set_link_faults(f);
    net.enable_batching();
    net.set_threads(threads);
    std::vector<std::vector<std::string>> logs(6);
    for (HostId h = 0; h < 6; ++h) {
      net.register_handler(h, "relay", [&net, &logs, h](const Packet& pk) {
        const int ttl = *packet_body<int>(pk);
        logs[h].push_back("h" + std::to_string(pk.src) + ":" + std::to_string(ttl));
        if (ttl > 0) {
          for (HostId n = 0; n < 6; ++n) {
            if (n != h) net.send(h, n, "relay", ttl - 1, 64);
          }
        }
      });
    }
    for (HostId h = 0; h < 6; ++h) net.send(5 - h, h, "relay", 2, 64);
    sched.run();
    std::string digest;
    for (auto& log : logs) {
      std::sort(log.begin(), log.end());
      for (const std::string& line : log) digest += line + "\n";
      digest += "--\n";
    }
    return std::make_pair(digest, net.stats());
  };
  const auto [seq_digest, seq_stats] = run(1);
  ASSERT_GT(seq_stats.frames_sent, 0u);  // batching actually engaged
  for (unsigned threads : {2u, 4u}) {
    const auto [par_digest, par_stats] = run(threads);
    EXPECT_EQ(par_digest, seq_digest) << threads;
    EXPECT_EQ(par_stats.frames_sent, seq_stats.frames_sent) << threads;
    EXPECT_EQ(par_stats.batched_messages, seq_stats.batched_messages) << threads;
    EXPECT_EQ(par_stats.dropped_by_fault, seq_stats.dropped_by_fault) << threads;
    EXPECT_EQ(par_stats.bytes_sent, seq_stats.bytes_sent) << threads;
  }
}

}  // namespace
}  // namespace aa::sim
