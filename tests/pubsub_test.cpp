// Tests for the event services: Siena-model distributed routing
// (delivery, covering-based pruning, unsubscription), the Elvin-style
// central baseline, the flooding baseline, and mobility proxies.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "event/filter_parser.hpp"
#include "pubsub/central_service.hpp"
#include "pubsub/flooding_network.hpp"
#include "pubsub/mobility.hpp"
#include "pubsub/siena_network.hpp"

namespace aa::pubsub {
namespace {

using event::Event;
using event::Filter;
using event::Op;

struct Fixture {
  sim::Scheduler sched;
  std::shared_ptr<sim::UniformTopology> topo;
  sim::Network net;

  explicit Fixture(std::size_t hosts = 16)
      : topo(std::make_shared<sim::UniformTopology>(hosts, duration::millis(5))),
        net(sched, topo) {}
};

Event temp_event(double celsius) {
  Event e("temperature");
  e.set("celsius", celsius);
  return e;
}

// --- SienaNetwork ---

TEST(Siena, DeliversMatchingEventAcrossBrokers) {
  Fixture f;
  SienaNetwork ps(f.net, {0, 1, 2, 3});
  ps.connect_tree();
  ps.attach_client(10, 0);
  ps.attach_client(11, 3);

  std::vector<Event> got;
  ps.subscribe(11, Filter().where("type", Op::kEq, "temperature"),
               [&](const Event& e) { got.push_back(e); });
  f.sched.run();

  ps.publish(10, temp_event(21.0));
  f.sched.run();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_DOUBLE_EQ(got[0].get_real("celsius").value(), 21.0);
}

TEST(Siena, FiltersNonMatchingEvents) {
  Fixture f;
  SienaNetwork ps(f.net, {0, 1});
  ps.connect_tree();
  ps.attach_client(10, 0);
  ps.attach_client(11, 1);
  int got = 0;
  ps.subscribe(11, Filter().where("celsius", Op::kGt, 30.0), [&](const Event&) { ++got; });
  f.sched.run();
  ps.publish(10, temp_event(21.0));
  f.sched.run();
  EXPECT_EQ(got, 0);
}

TEST(Siena, EventNotSentToUninterestedBranches) {
  // Star of brokers: events should only traverse edges toward matching
  // subscribers, never to broker 2's branch.
  Fixture f;
  SienaNetwork ps(f.net, {0, 1, 2});
  ASSERT_TRUE(ps.connect(0, 1).is_ok());
  ASSERT_TRUE(ps.connect(0, 2).is_ok());
  ps.attach_client(10, 1);  // publisher
  ps.attach_client(11, 2);  // subscriber to something else
  ps.subscribe(11, Filter().where("type", Op::kEq, "other"), [](const Event&) {});
  f.sched.run();
  ps.publish(10, temp_event(25.0));
  f.sched.run();
  // Broker 2 received the subscription but must not receive the
  // non-matching publication.
  EXPECT_EQ(ps.broker(2)->stats().publications_routed, 0u);
}

TEST(Siena, CoveringSuppressesSubscriptionForwarding) {
  Fixture f;
  SienaNetwork ps(f.net, {0, 1});
  ps.connect_tree();
  ps.attach_client(10, 0);
  ps.attach_client(11, 0);
  // Wide subscription first, then a covered narrower one: the second
  // must not be forwarded from broker 0 to broker 1.
  ps.subscribe(10, Filter().where("celsius", Op::kGt, 0.0), [](const Event&) {});
  f.sched.run();
  ps.subscribe(11, Filter().where("celsius", Op::kGt, 10.0), [](const Event&) {});
  f.sched.run();
  EXPECT_GE(ps.broker(0)->stats().subscriptions_suppressed, 1u);
  // Broker 1 holds only the covering subscription.
  EXPECT_EQ(ps.broker(1)->table_size(), 1u);
}

TEST(Siena, CoveredSubscriberStillReceivesEvents) {
  Fixture f;
  SienaNetwork ps(f.net, {0, 1});
  ps.connect_tree();
  ps.attach_client(10, 0);
  ps.attach_client(11, 0);
  ps.attach_client(12, 1);
  int wide = 0, narrow = 0;
  ps.subscribe(10, Filter().where("celsius", Op::kGt, 0.0), [&](const Event&) { ++wide; });
  f.sched.run();
  ps.subscribe(11, Filter().where("celsius", Op::kGt, 10.0), [&](const Event&) { ++narrow; });
  f.sched.run();
  ps.publish(12, temp_event(20.0));  // matches both, from the far broker
  f.sched.run();
  EXPECT_EQ(wide, 1);
  EXPECT_EQ(narrow, 1);
}

TEST(Siena, UnsubscribeStopsDeliveryAndRestoresCovered) {
  Fixture f;
  SienaNetwork ps(f.net, {0, 1});
  ps.connect_tree();
  ps.attach_client(10, 0);
  ps.attach_client(12, 1);
  int wide = 0, narrow = 0;
  const auto wide_id =
      ps.subscribe(10, Filter().where("celsius", Op::kGt, 0.0), [&](const Event&) { ++wide; });
  f.sched.run();
  ps.subscribe(10, Filter().where("celsius", Op::kGt, 10.0), [&](const Event&) { ++narrow; });
  f.sched.run();

  ps.unsubscribe(10, wide_id);
  f.sched.run();
  // The narrow subscription must now be installed at broker 1 (it was
  // suppressed by the wide one before).
  EXPECT_EQ(ps.broker(1)->table_size(), 1u);

  ps.publish(12, temp_event(20.0));
  f.sched.run();
  EXPECT_EQ(wide, 0);
  EXPECT_EQ(narrow, 1);
}

TEST(Siena, MultipleSubscriptionsOneClientOneDeliveryEach) {
  Fixture f;
  SienaNetwork ps(f.net, {0});
  ps.attach_client(10, 0);
  ps.attach_client(11, 0);
  int a = 0, b = 0;
  ps.subscribe(10, Filter().where("celsius", Op::kGt, 0.0), [&](const Event&) { ++a; });
  ps.subscribe(10, Filter().where("celsius", Op::kGt, 10.0), [&](const Event&) { ++b; });
  f.sched.run();
  ps.publish(11, temp_event(20.0));
  f.sched.run();
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 1);
}

TEST(Siena, ReattachedClientReceivesAfterMove) {
  // Regression: re-attaching an attached client used to silently switch
  // its access broker, leaving its live subscriptions routed at the old
  // one — delivery then depended entirely on the stale broker.  A move
  // must re-issue the subscriptions at the new access broker.
  Fixture f;
  SienaNetwork ps(f.net, {0, 1});
  ps.connect_tree();
  ps.attach_client(10, 0);
  ps.attach_client(11, 1);  // publisher
  int got = 0;
  ps.subscribe(10, Filter().where("type", Op::kEq, "temperature"),
               [&](const Event&) { ++got; });
  f.sched.run();

  ps.attach_client(10, 1);  // the client moves to broker 1
  f.sched.run();
  ps.publish(11, temp_event(20.0));
  f.sched.run();
  EXPECT_EQ(got, 1);  // exactly one delivery — moved, not duplicated

  // The old broker is now irrelevant to this client: delivery must
  // survive its death.
  f.net.set_host_up(0, false);
  ps.publish(11, temp_event(21.0));
  f.sched.run();
  EXPECT_EQ(got, 2);
}

TEST(Siena, ReadvertisementWithChangedFilterPropagates) {
  // Regression: a re-advertisement that changed an advertisement's
  // filter was recorded locally but never re-flooded or re-evaluated,
  // so a publisher widening its event class was silently lost and
  // pending subscriptions stayed suppressed downstream.
  Fixture f;
  SienaNetwork ps(f.net, {0, 1});
  ps.connect_tree();
  ps.set_advertisement_forwarding(true);
  ps.attach_client(10, 0);  // publisher
  ps.attach_client(11, 1);  // subscriber
  ps.advertise(10, Filter().where("type", Op::kEq, "temperature"));
  f.sched.run();
  const std::uint64_t adv_id = ps.advertisements().back().id;

  int got = 0;
  ps.subscribe(11, Filter().where("type", Op::kEq, "humidity"),
               [&](const Event&) { ++got; });
  f.sched.run();
  // No advertised overlap yet: the subscription stays at broker 1.
  EXPECT_GE(ps.broker(1)->stats().subscriptions_suppressed, 1u);

  // The publisher widens its declared event class to everything.
  ps.re_advertise(10, adv_id, Filter().where("type", Op::kExists));
  f.sched.run();
  Event e("humidity");
  e.set("percent", 60.0);
  ps.publish(10, e);
  f.sched.run();
  EXPECT_EQ(got, 1);
}

TEST(Siena, UnsubscribeReforwardsOnlyUncoveredSubscriptions) {
  // Covering-suppression regression for the unsubscribe re-forward
  // path: removing a covering subscription must re-forward the widest
  // still-covered subscription and keep narrower ones suppressed.
  Fixture f;
  SienaNetwork ps(f.net, {0, 1});
  ps.connect_tree();
  ps.attach_client(10, 0);
  ps.attach_client(12, 1);
  int wide = 0, mid = 0, narrow = 0;
  const auto wide_id =
      ps.subscribe(10, Filter().where("celsius", Op::kGt, 0.0), [&](const Event&) { ++wide; });
  f.sched.run();
  ps.subscribe(10, Filter().where("celsius", Op::kGt, 10.0), [&](const Event&) { ++mid; });
  ps.subscribe(10, Filter().where("celsius", Op::kGt, 20.0), [&](const Event&) { ++narrow; });
  f.sched.run();
  EXPECT_EQ(ps.broker(1)->table_size(), 1u);  // only the widest forwarded

  const auto forwarded_before = ps.total_broker_stats().subscriptions_forwarded;
  ps.unsubscribe(10, wide_id);
  f.sched.run();
  // Exactly one re-forward: the mid subscription; the narrow one is
  // covered by it and stays suppressed.
  EXPECT_EQ(ps.broker(1)->table_size(), 1u);
  EXPECT_EQ(ps.total_broker_stats().subscriptions_forwarded - forwarded_before, 1u);

  ps.publish(12, temp_event(15.0));
  f.sched.run();
  EXPECT_EQ(wide, 0);
  EXPECT_EQ(mid, 1);
  EXPECT_EQ(narrow, 0);
  ps.publish(12, temp_event(25.0));
  f.sched.run();
  EXPECT_EQ(mid, 2);
  EXPECT_EQ(narrow, 1);
}

TEST(Siena, UnsubscribeReforwardBatchIsOrderIndependent) {
  // Batch-invariant regression: when a covering filter departs, the
  // newly-uncovered subscriptions must be re-forwarded as one batch of
  // covering-maximal filters.  Here the *narrow* subscription holds the
  // lower id, so a per-entry re-forward loop walking the table in id
  // order would forward it first and then forward the mid one as well
  // (narrow does not cover mid) — two sends and a stranded narrow entry
  // upstream, where one send suffices.
  Fixture f;
  SienaNetwork ps(f.net, {0, 1});
  ps.connect_tree();
  ps.attach_client(10, 0);
  ps.attach_client(12, 1);
  int wide = 0, mid = 0, narrow = 0;
  const auto wide_id =
      ps.subscribe(10, Filter().where("celsius", Op::kGt, 0.0), [&](const Event&) { ++wide; });
  f.sched.run();
  ps.subscribe(10, Filter().where("celsius", Op::kGt, 20.0), [&](const Event&) { ++narrow; });
  ps.subscribe(10, Filter().where("celsius", Op::kGt, 10.0), [&](const Event&) { ++mid; });
  f.sched.run();
  EXPECT_EQ(ps.broker(1)->table_size(), 1u);  // only the widest forwarded

  const auto before = ps.total_broker_stats();
  ps.unsubscribe(10, wide_id);
  f.sched.run();
  const auto after = ps.total_broker_stats();
  // One re-forward (the mid filter), and the narrow sibling counted as
  // suppressed — it rides along under mid exactly as if mid had been
  // installed first.
  EXPECT_EQ(ps.broker(1)->table_size(), 1u);
  EXPECT_EQ(after.subscriptions_forwarded - before.subscriptions_forwarded, 1u);
  EXPECT_EQ(after.subscriptions_suppressed - before.subscriptions_suppressed, 1u);

  ps.publish(12, temp_event(15.0));
  f.sched.run();
  EXPECT_EQ(wide, 0);
  EXPECT_EQ(mid, 1);
  EXPECT_EQ(narrow, 0);
  ps.publish(12, temp_event(25.0));
  f.sched.run();
  EXPECT_EQ(mid, 2);
  EXPECT_EQ(narrow, 1);
}

TEST(Siena, IndexedMatchingMatchesNaiveOracle) {
  // The FilterIndex path and the linear-scan oracle must produce the
  // same deliveries for the same workload, at a fraction of the filter
  // evaluations.
  auto run = [&](bool indexed, BrokerStats& stats) {
    Fixture f(64);
    std::vector<sim::HostId> brokers{0, 1, 2, 3, 4, 5, 6, 7};
    SienaNetwork ps(f.net, brokers);
    ps.connect_tree();
    ps.set_indexed_matching(indexed);
    std::vector<std::string> log;
    for (int s = 0; s < 24; ++s) {
      Filter filt;
      switch (s % 3) {
        case 0: filt.where("topic", Op::kEq, "t" + std::to_string(s % 6)); break;
        case 1: filt.where("value", Op::kGt, static_cast<double>(s)); break;
        default: filt.where("name", Op::kPrefix, "n" + std::to_string(s % 2)); break;
      }
      const sim::HostId host = static_cast<sim::HostId>(20 + s);
      ps.attach_client(host, brokers[static_cast<std::size_t>(s) % brokers.size()]);
      ps.subscribe(host, filt, [&log, s](const Event& e) {
        log.push_back(std::to_string(s) + ":" + e.describe());
      });
    }
    f.sched.run();
    ps.attach_client(50, 3);
    for (int i = 0; i < 30; ++i) {
      Event e("reading");
      e.set("topic", "t" + std::to_string(i % 6))
          .set("value", static_cast<double>(i))
          .set("name", "n" + std::to_string(i % 3));
      ps.publish(50, e);
      f.sched.run();
    }
    stats = ps.total_broker_stats();
    return log;
  };
  BrokerStats indexed_stats, naive_stats;
  const auto indexed_log = run(true, indexed_stats);
  const auto naive_log = run(false, naive_stats);
  EXPECT_EQ(indexed_log, naive_log);
  EXPECT_FALSE(indexed_log.empty());
  EXPECT_EQ(naive_stats.index_probes, 0u);
  EXPECT_EQ(indexed_stats.match_tests, 0u);
  EXPECT_LT(indexed_stats.index_probes, naive_stats.match_tests);
}

TEST(Siena, RejectsCyclicOverlayLinks) {
  Fixture f;
  SienaNetwork ps(f.net, {0, 1, 2});
  EXPECT_TRUE(ps.connect(0, 1).is_ok());
  EXPECT_TRUE(ps.connect(1, 2).is_ok());
  EXPECT_FALSE(ps.connect(2, 0).is_ok());
}

TEST(Siena, AutoAttachesUnattachedClients) {
  Fixture f;
  SienaNetwork ps(f.net, {0});
  int got = 0;
  ps.subscribe(9, Filter(), [&](const Event&) { ++got; });
  f.sched.run();
  ps.publish(8, temp_event(1.0));
  f.sched.run();
  EXPECT_EQ(got, 1);
}

TEST(Siena, DeepChainDelivery) {
  Fixture f(40);
  std::vector<sim::HostId> brokers;
  for (sim::HostId h = 0; h < 20; ++h) brokers.push_back(h);
  SienaNetwork ps(f.net, brokers);
  for (sim::HostId h = 0; h + 1 < 20; ++h) ASSERT_TRUE(ps.connect(h, h + 1).is_ok());
  ps.attach_client(30, 0);
  ps.attach_client(31, 19);
  int got = 0;
  ps.subscribe(31, Filter().where("type", Op::kEq, "temperature"),
               [&](const Event&) { ++got; });
  f.sched.run();
  ps.publish(30, temp_event(5.0));
  f.sched.run();
  EXPECT_EQ(got, 1);
}

// --- CentralService ---

TEST(Central, DeliversAndFilters) {
  Fixture f;
  CentralService ps(f.net, 0);
  int hot = 0, all = 0;
  ps.subscribe(10, Filter().where("celsius", Op::kGt, 30.0), [&](const Event&) { ++hot; });
  ps.subscribe(11, Filter(), [&](const Event&) { ++all; });
  f.sched.run();
  ps.publish(12, temp_event(20.0));
  f.sched.run();
  EXPECT_EQ(hot, 0);
  EXPECT_EQ(all, 1);
}

TEST(Central, UnsubscribeStopsDelivery) {
  Fixture f;
  CentralService ps(f.net, 0);
  int got = 0;
  const auto id = ps.subscribe(10, Filter(), [&](const Event&) { ++got; });
  f.sched.run();
  ps.unsubscribe(10, id);
  f.sched.run();
  ps.publish(11, temp_event(1.0));
  f.sched.run();
  EXPECT_EQ(got, 0);
}

TEST(Central, AllTrafficTouchesServer) {
  Fixture f;
  CentralService ps(f.net, 0);
  ps.subscribe(10, Filter(), [](const Event&) {});
  f.sched.run();
  for (int i = 0; i < 5; ++i) ps.publish(11, temp_event(i));
  f.sched.run();
  EXPECT_EQ(ps.server_messages(), 6u);  // 1 sub + 5 pubs
}

TEST(Central, IndexedMatchingMatchesNaiveOracle) {
  // Same workload under both server matching paths: identical
  // deliveries, with the indexed path probing fewer candidates than
  // the naive path tests.
  auto run = [&](bool indexed, std::uint64_t& tests, std::uint64_t& probes) {
    Fixture f(64);
    CentralService ps(f.net, 0);
    ps.set_indexed_matching(indexed);
    std::vector<std::string> log;
    for (int s = 0; s < 20; ++s) {
      Filter filt;
      if (s % 2 == 0) {
        filt.where("topic", Op::kEq, "t" + std::to_string(s % 5));
      } else {
        filt.where("value", Op::kLe, static_cast<double>(s));
      }
      ps.subscribe(static_cast<sim::HostId>(10 + s), filt, [&log, s](const Event& e) {
        log.push_back(std::to_string(s) + ":" + e.describe());
      });
    }
    f.sched.run();
    for (int i = 0; i < 25; ++i) {
      Event e("reading");
      e.set("topic", "t" + std::to_string(i % 5)).set("value", static_cast<double>(i));
      ps.publish(40, e);
      f.sched.run();
    }
    tests = ps.server_match_tests();
    probes = ps.server_index_probes();
    return log;
  };
  std::uint64_t indexed_tests = 0, indexed_probes = 0, naive_tests = 0, naive_probes = 0;
  const auto indexed_log = run(true, indexed_tests, indexed_probes);
  const auto naive_log = run(false, naive_tests, naive_probes);
  EXPECT_EQ(indexed_log, naive_log);
  EXPECT_FALSE(indexed_log.empty());
  EXPECT_EQ(indexed_tests, 0u);
  EXPECT_EQ(naive_probes, 0u);
  EXPECT_LT(indexed_probes, naive_tests);
}

// --- FloodingNetwork ---

TEST(Flooding, DeliversToMatchingSubscriberOnly) {
  Fixture f;
  FloodingNetwork ps(f.net, {0, 1, 2, 3});
  ps.connect_tree();
  ps.attach_client(10, 0);
  ps.attach_client(11, 3);
  int got = 0, other = 0;
  ps.subscribe(11, Filter().where("type", Op::kEq, "temperature"), [&](const Event&) { ++got; });
  ps.subscribe(11, Filter().where("type", Op::kEq, "humidity"), [&](const Event&) { ++other; });
  f.sched.run();
  ps.publish(10, temp_event(9.0));
  f.sched.run();
  EXPECT_EQ(got, 1);
  EXPECT_EQ(other, 0);
}

TEST(Flooding, VisitsAllBrokersRegardlessOfInterest) {
  Fixture f;
  FloodingNetwork ps(f.net, {0, 1, 2, 3});
  ps.connect_tree();
  ps.attach_client(10, 0);
  f.sched.run();
  const auto before = ps.broker_messages();
  ps.publish(10, temp_event(1.0));
  f.sched.run();
  // The publication reaches every broker: 1 client->broker + 3 flood hops.
  EXPECT_EQ(ps.broker_messages() - before, 4u);
}

// --- MobilityService ---

TEST(Mobility, RelaysWhileConnected) {
  Fixture f;
  SienaNetwork siena(f.net, {0, 1});
  siena.connect_tree();
  MobilityService mob(f.net, siena, /*proxy_host=*/1);
  mob.register_mobile("bob", 10);
  int got = 0;
  mob.subscribe("bob", Filter().where("type", Op::kEq, "temperature"),
                [&](const Event&) { ++got; });
  f.sched.run();
  siena.publish(11, temp_event(20.0));
  f.sched.run();
  EXPECT_EQ(got, 1);
}

TEST(Mobility, BuffersWhileDisconnectedAndReplaysOnReconnect) {
  Fixture f;
  SienaNetwork siena(f.net, {0, 1});
  siena.connect_tree();
  MobilityService mob(f.net, siena, 1);
  mob.register_mobile("bob", 10);
  std::vector<double> got;
  mob.subscribe("bob", Filter().where("type", Op::kEq, "temperature"),
                [&](const Event& e) { got.push_back(e.get_real("celsius").value()); });
  f.sched.run();

  mob.disconnect("bob");
  siena.publish(11, temp_event(1.0));
  siena.publish(11, temp_event(2.0));
  f.sched.run();
  EXPECT_TRUE(got.empty());
  EXPECT_EQ(mob.buffered("bob"), 2u);

  mob.reconnect("bob", /*new_host=*/12);  // reappears elsewhere
  f.sched.run();
  EXPECT_EQ(got, (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(mob.buffered("bob"), 0u);
}

TEST(Mobility, BufferOverflowDropsOldest) {
  Fixture f;
  SienaNetwork siena(f.net, {0});
  MobilityService mob(f.net, siena, 0, /*capacity=*/2);
  mob.register_mobile("bob", 10);
  std::vector<double> got;
  mob.subscribe("bob", Filter().where("type", Op::kEq, "temperature"),
                [&](const Event& e) { got.push_back(e.get_real("celsius").value()); });
  f.sched.run();
  mob.disconnect("bob");
  for (int i = 1; i <= 5; ++i) siena.publish(11, temp_event(i));
  f.sched.run();
  EXPECT_EQ(mob.dropped(), 3u);
  mob.reconnect("bob", 10);
  f.sched.run();
  EXPECT_EQ(got, (std::vector<double>{4.0, 5.0}));
}

// --- Cross-implementation comparison (the C1 claim in miniature) ---

TEST(Comparison, SienaSendsFewerBytesThanFloodingForLocalTraffic) {
  // Publisher and subscriber share a branch; flooding still traverses
  // the whole overlay while content-based routing stays local.
  auto run = [&](bool flooding) -> std::uint64_t {
    Fixture f(64);
    std::vector<sim::HostId> brokers;
    for (sim::HostId h = 0; h < 16; ++h) brokers.push_back(h);
    std::uint64_t bytes = 0;
    if (flooding) {
      FloodingNetwork ps(f.net, brokers);
      ps.connect_tree();
      ps.attach_client(20, 15);
      ps.attach_client(21, 15);
      ps.subscribe(21, Filter().where("type", Op::kEq, "temperature"), [](const Event&) {});
      f.sched.run();
      f.net.reset_stats();
      for (int i = 0; i < 10; ++i) ps.publish(20, temp_event(i));
      f.sched.run();
      bytes = f.net.stats().bytes_sent;
    } else {
      SienaNetwork ps(f.net, brokers);
      ps.connect_tree();
      ps.attach_client(20, 15);
      ps.attach_client(21, 15);
      ps.subscribe(21, Filter().where("type", Op::kEq, "temperature"), [](const Event&) {});
      f.sched.run();
      f.net.reset_stats();
      for (int i = 0; i < 10; ++i) ps.publish(20, temp_event(i));
      f.sched.run();
      bytes = f.net.stats().bytes_sent;
    }
    return bytes;
  };
  EXPECT_LT(run(false), run(true));
}

}  // namespace
}  // namespace aa::pubsub
