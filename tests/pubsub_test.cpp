// Tests for the event services: Siena-model distributed routing
// (delivery, covering-based pruning, unsubscription), the Elvin-style
// central baseline, the flooding baseline, and mobility proxies.
#include <gtest/gtest.h>

#include <memory>

#include "event/filter_parser.hpp"
#include "pubsub/central_service.hpp"
#include "pubsub/flooding_network.hpp"
#include "pubsub/mobility.hpp"
#include "pubsub/siena_network.hpp"

namespace aa::pubsub {
namespace {

using event::Event;
using event::Filter;
using event::Op;

struct Fixture {
  sim::Scheduler sched;
  std::shared_ptr<sim::UniformTopology> topo;
  sim::Network net;

  explicit Fixture(std::size_t hosts = 16)
      : topo(std::make_shared<sim::UniformTopology>(hosts, duration::millis(5))),
        net(sched, topo) {}
};

Event temp_event(double celsius) {
  Event e("temperature");
  e.set("celsius", celsius);
  return e;
}

// --- SienaNetwork ---

TEST(Siena, DeliversMatchingEventAcrossBrokers) {
  Fixture f;
  SienaNetwork ps(f.net, {0, 1, 2, 3});
  ps.connect_tree();
  ps.attach_client(10, 0);
  ps.attach_client(11, 3);

  std::vector<Event> got;
  ps.subscribe(11, Filter().where("type", Op::kEq, "temperature"),
               [&](const Event& e) { got.push_back(e); });
  f.sched.run();

  ps.publish(10, temp_event(21.0));
  f.sched.run();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_DOUBLE_EQ(got[0].get_real("celsius").value(), 21.0);
}

TEST(Siena, FiltersNonMatchingEvents) {
  Fixture f;
  SienaNetwork ps(f.net, {0, 1});
  ps.connect_tree();
  ps.attach_client(10, 0);
  ps.attach_client(11, 1);
  int got = 0;
  ps.subscribe(11, Filter().where("celsius", Op::kGt, 30.0), [&](const Event&) { ++got; });
  f.sched.run();
  ps.publish(10, temp_event(21.0));
  f.sched.run();
  EXPECT_EQ(got, 0);
}

TEST(Siena, EventNotSentToUninterestedBranches) {
  // Star of brokers: events should only traverse edges toward matching
  // subscribers, never to broker 2's branch.
  Fixture f;
  SienaNetwork ps(f.net, {0, 1, 2});
  ASSERT_TRUE(ps.connect(0, 1).is_ok());
  ASSERT_TRUE(ps.connect(0, 2).is_ok());
  ps.attach_client(10, 1);  // publisher
  ps.attach_client(11, 2);  // subscriber to something else
  ps.subscribe(11, Filter().where("type", Op::kEq, "other"), [](const Event&) {});
  f.sched.run();
  ps.publish(10, temp_event(25.0));
  f.sched.run();
  // Broker 2 received the subscription but must not receive the
  // non-matching publication.
  EXPECT_EQ(ps.broker(2)->stats().publications_routed, 0u);
}

TEST(Siena, CoveringSuppressesSubscriptionForwarding) {
  Fixture f;
  SienaNetwork ps(f.net, {0, 1});
  ps.connect_tree();
  ps.attach_client(10, 0);
  ps.attach_client(11, 0);
  // Wide subscription first, then a covered narrower one: the second
  // must not be forwarded from broker 0 to broker 1.
  ps.subscribe(10, Filter().where("celsius", Op::kGt, 0.0), [](const Event&) {});
  f.sched.run();
  ps.subscribe(11, Filter().where("celsius", Op::kGt, 10.0), [](const Event&) {});
  f.sched.run();
  EXPECT_GE(ps.broker(0)->stats().subscriptions_suppressed, 1u);
  // Broker 1 holds only the covering subscription.
  EXPECT_EQ(ps.broker(1)->table_size(), 1u);
}

TEST(Siena, CoveredSubscriberStillReceivesEvents) {
  Fixture f;
  SienaNetwork ps(f.net, {0, 1});
  ps.connect_tree();
  ps.attach_client(10, 0);
  ps.attach_client(11, 0);
  ps.attach_client(12, 1);
  int wide = 0, narrow = 0;
  ps.subscribe(10, Filter().where("celsius", Op::kGt, 0.0), [&](const Event&) { ++wide; });
  f.sched.run();
  ps.subscribe(11, Filter().where("celsius", Op::kGt, 10.0), [&](const Event&) { ++narrow; });
  f.sched.run();
  ps.publish(12, temp_event(20.0));  // matches both, from the far broker
  f.sched.run();
  EXPECT_EQ(wide, 1);
  EXPECT_EQ(narrow, 1);
}

TEST(Siena, UnsubscribeStopsDeliveryAndRestoresCovered) {
  Fixture f;
  SienaNetwork ps(f.net, {0, 1});
  ps.connect_tree();
  ps.attach_client(10, 0);
  ps.attach_client(12, 1);
  int wide = 0, narrow = 0;
  const auto wide_id =
      ps.subscribe(10, Filter().where("celsius", Op::kGt, 0.0), [&](const Event&) { ++wide; });
  f.sched.run();
  ps.subscribe(10, Filter().where("celsius", Op::kGt, 10.0), [&](const Event&) { ++narrow; });
  f.sched.run();

  ps.unsubscribe(10, wide_id);
  f.sched.run();
  // The narrow subscription must now be installed at broker 1 (it was
  // suppressed by the wide one before).
  EXPECT_EQ(ps.broker(1)->table_size(), 1u);

  ps.publish(12, temp_event(20.0));
  f.sched.run();
  EXPECT_EQ(wide, 0);
  EXPECT_EQ(narrow, 1);
}

TEST(Siena, MultipleSubscriptionsOneClientOneDeliveryEach) {
  Fixture f;
  SienaNetwork ps(f.net, {0});
  ps.attach_client(10, 0);
  ps.attach_client(11, 0);
  int a = 0, b = 0;
  ps.subscribe(10, Filter().where("celsius", Op::kGt, 0.0), [&](const Event&) { ++a; });
  ps.subscribe(10, Filter().where("celsius", Op::kGt, 10.0), [&](const Event&) { ++b; });
  f.sched.run();
  ps.publish(11, temp_event(20.0));
  f.sched.run();
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 1);
}

TEST(Siena, RejectsCyclicOverlayLinks) {
  Fixture f;
  SienaNetwork ps(f.net, {0, 1, 2});
  EXPECT_TRUE(ps.connect(0, 1).is_ok());
  EXPECT_TRUE(ps.connect(1, 2).is_ok());
  EXPECT_FALSE(ps.connect(2, 0).is_ok());
}

TEST(Siena, AutoAttachesUnattachedClients) {
  Fixture f;
  SienaNetwork ps(f.net, {0});
  int got = 0;
  ps.subscribe(9, Filter(), [&](const Event&) { ++got; });
  f.sched.run();
  ps.publish(8, temp_event(1.0));
  f.sched.run();
  EXPECT_EQ(got, 1);
}

TEST(Siena, DeepChainDelivery) {
  Fixture f(40);
  std::vector<sim::HostId> brokers;
  for (sim::HostId h = 0; h < 20; ++h) brokers.push_back(h);
  SienaNetwork ps(f.net, brokers);
  for (sim::HostId h = 0; h + 1 < 20; ++h) ASSERT_TRUE(ps.connect(h, h + 1).is_ok());
  ps.attach_client(30, 0);
  ps.attach_client(31, 19);
  int got = 0;
  ps.subscribe(31, Filter().where("type", Op::kEq, "temperature"),
               [&](const Event&) { ++got; });
  f.sched.run();
  ps.publish(30, temp_event(5.0));
  f.sched.run();
  EXPECT_EQ(got, 1);
}

// --- CentralService ---

TEST(Central, DeliversAndFilters) {
  Fixture f;
  CentralService ps(f.net, 0);
  int hot = 0, all = 0;
  ps.subscribe(10, Filter().where("celsius", Op::kGt, 30.0), [&](const Event&) { ++hot; });
  ps.subscribe(11, Filter(), [&](const Event&) { ++all; });
  f.sched.run();
  ps.publish(12, temp_event(20.0));
  f.sched.run();
  EXPECT_EQ(hot, 0);
  EXPECT_EQ(all, 1);
}

TEST(Central, UnsubscribeStopsDelivery) {
  Fixture f;
  CentralService ps(f.net, 0);
  int got = 0;
  const auto id = ps.subscribe(10, Filter(), [&](const Event&) { ++got; });
  f.sched.run();
  ps.unsubscribe(10, id);
  f.sched.run();
  ps.publish(11, temp_event(1.0));
  f.sched.run();
  EXPECT_EQ(got, 0);
}

TEST(Central, AllTrafficTouchesServer) {
  Fixture f;
  CentralService ps(f.net, 0);
  ps.subscribe(10, Filter(), [](const Event&) {});
  f.sched.run();
  for (int i = 0; i < 5; ++i) ps.publish(11, temp_event(i));
  f.sched.run();
  EXPECT_EQ(ps.server_messages(), 6u);  // 1 sub + 5 pubs
}

// --- FloodingNetwork ---

TEST(Flooding, DeliversToMatchingSubscriberOnly) {
  Fixture f;
  FloodingNetwork ps(f.net, {0, 1, 2, 3});
  ps.connect_tree();
  ps.attach_client(10, 0);
  ps.attach_client(11, 3);
  int got = 0, other = 0;
  ps.subscribe(11, Filter().where("type", Op::kEq, "temperature"), [&](const Event&) { ++got; });
  ps.subscribe(11, Filter().where("type", Op::kEq, "humidity"), [&](const Event&) { ++other; });
  f.sched.run();
  ps.publish(10, temp_event(9.0));
  f.sched.run();
  EXPECT_EQ(got, 1);
  EXPECT_EQ(other, 0);
}

TEST(Flooding, VisitsAllBrokersRegardlessOfInterest) {
  Fixture f;
  FloodingNetwork ps(f.net, {0, 1, 2, 3});
  ps.connect_tree();
  ps.attach_client(10, 0);
  f.sched.run();
  const auto before = ps.broker_messages();
  ps.publish(10, temp_event(1.0));
  f.sched.run();
  // The publication reaches every broker: 1 client->broker + 3 flood hops.
  EXPECT_EQ(ps.broker_messages() - before, 4u);
}

// --- MobilityService ---

TEST(Mobility, RelaysWhileConnected) {
  Fixture f;
  SienaNetwork siena(f.net, {0, 1});
  siena.connect_tree();
  MobilityService mob(f.net, siena, /*proxy_host=*/1);
  mob.register_mobile("bob", 10);
  int got = 0;
  mob.subscribe("bob", Filter().where("type", Op::kEq, "temperature"),
                [&](const Event&) { ++got; });
  f.sched.run();
  siena.publish(11, temp_event(20.0));
  f.sched.run();
  EXPECT_EQ(got, 1);
}

TEST(Mobility, BuffersWhileDisconnectedAndReplaysOnReconnect) {
  Fixture f;
  SienaNetwork siena(f.net, {0, 1});
  siena.connect_tree();
  MobilityService mob(f.net, siena, 1);
  mob.register_mobile("bob", 10);
  std::vector<double> got;
  mob.subscribe("bob", Filter().where("type", Op::kEq, "temperature"),
                [&](const Event& e) { got.push_back(e.get_real("celsius").value()); });
  f.sched.run();

  mob.disconnect("bob");
  siena.publish(11, temp_event(1.0));
  siena.publish(11, temp_event(2.0));
  f.sched.run();
  EXPECT_TRUE(got.empty());
  EXPECT_EQ(mob.buffered("bob"), 2u);

  mob.reconnect("bob", /*new_host=*/12);  // reappears elsewhere
  f.sched.run();
  EXPECT_EQ(got, (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(mob.buffered("bob"), 0u);
}

TEST(Mobility, BufferOverflowDropsOldest) {
  Fixture f;
  SienaNetwork siena(f.net, {0});
  MobilityService mob(f.net, siena, 0, /*capacity=*/2);
  mob.register_mobile("bob", 10);
  std::vector<double> got;
  mob.subscribe("bob", Filter().where("type", Op::kEq, "temperature"),
                [&](const Event& e) { got.push_back(e.get_real("celsius").value()); });
  f.sched.run();
  mob.disconnect("bob");
  for (int i = 1; i <= 5; ++i) siena.publish(11, temp_event(i));
  f.sched.run();
  EXPECT_EQ(mob.dropped(), 3u);
  mob.reconnect("bob", 10);
  f.sched.run();
  EXPECT_EQ(got, (std::vector<double>{4.0, 5.0}));
}

// --- Cross-implementation comparison (the C1 claim in miniature) ---

TEST(Comparison, SienaSendsFewerBytesThanFloodingForLocalTraffic) {
  // Publisher and subscriber share a branch; flooding still traverses
  // the whole overlay while content-based routing stays local.
  auto run = [&](bool flooding) -> std::uint64_t {
    Fixture f(64);
    std::vector<sim::HostId> brokers;
    for (sim::HostId h = 0; h < 16; ++h) brokers.push_back(h);
    std::uint64_t bytes = 0;
    if (flooding) {
      FloodingNetwork ps(f.net, brokers);
      ps.connect_tree();
      ps.attach_client(20, 15);
      ps.attach_client(21, 15);
      ps.subscribe(21, Filter().where("type", Op::kEq, "temperature"), [](const Event&) {});
      f.sched.run();
      f.net.reset_stats();
      for (int i = 0; i < 10; ++i) ps.publish(20, temp_event(i));
      f.sched.run();
      bytes = f.net.stats().bytes_sent;
    } else {
      SienaNetwork ps(f.net, brokers);
      ps.connect_tree();
      ps.attach_client(20, 15);
      ps.attach_client(21, 15);
      ps.subscribe(21, Filter().where("type", Op::kEq, "temperature"), [](const Event&) {});
      f.sched.run();
      f.net.reset_stats();
      for (int i = 0; i < 10; ++i) ps.publish(20, temp_event(i));
      f.sched.run();
      bytes = f.net.stats().bytes_sent;
    }
    return bytes;
  };
  EXPECT_LT(run(false), run(true));
}

}  // namespace
}  // namespace aa::pubsub
