// Tests for the XML pipeline fabric: component wiring, intra- vs
// inter-node event flow (Figure 2), the standard component library,
// sensor wrappers, and bundle-driven pipeline installation.
#include <gtest/gtest.h>

#include <memory>

#include "bundle/deployer.hpp"
#include "pipeline/components.hpp"
#include "pipeline/installers.hpp"
#include "pipeline/sensors.hpp"
#include "pubsub/siena_network.hpp"

namespace aa::pipeline {
namespace {

using event::Event;
using event::Filter;
using event::Op;

struct Fixture {
  sim::Scheduler sched;
  std::shared_ptr<sim::Topology> topo;
  sim::Network net;
  PipelineNetwork pipes;

  explicit Fixture(std::size_t hosts = 8)
      : topo(std::make_shared<sim::UniformTopology>(hosts, duration::millis(5))),
        net(sched, topo),
        pipes(net) {}

  ComponentRef sink(sim::HostId host, const std::string& name, std::vector<Event>& out) {
    return pipes.add(host, std::make_unique<SinkComponent>(
                               name, [&out](const Event& e) { out.push_back(e); }));
  }
};

Event temp(double celsius) {
  Event e("temperature");
  e.set("celsius", celsius);
  return e;
}

TEST(Pipeline, IntraNodeChainDelivers) {
  Fixture f;
  std::vector<Event> got;
  auto filter = f.pipes.add(
      0, std::make_unique<FilterComponent>("f", Filter().where("celsius", Op::kGt, 10.0)));
  auto sink = f.sink(0, "s", got);
  ASSERT_TRUE(f.pipes.connect(filter, sink).is_ok());

  f.pipes.inject(filter, temp(20.0));
  f.pipes.inject(filter, temp(5.0));
  f.sched.run();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_DOUBLE_EQ(got[0].get_real("celsius").value(), 20.0);
  EXPECT_EQ(f.pipes.stats().intra_node_hops, 1u);
  EXPECT_EQ(f.pipes.stats().inter_node_hops, 0u);
}

TEST(Pipeline, InterNodeHopCrossesWireAsXml) {
  Fixture f;
  std::vector<Event> got;
  auto a = f.pipes.add(0, std::make_unique<TransformComponent>("t", [](const Event& e) {
    return std::vector<Event>{e};
  }));
  auto b = f.sink(3, "s", got);
  ASSERT_TRUE(f.pipes.connect(a, b).is_ok());
  f.pipes.inject(a, temp(1.5));
  f.sched.run();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], temp(1.5));  // survived serialise/parse round-trip
  EXPECT_EQ(f.pipes.stats().inter_node_hops, 1u);
  EXPECT_GT(f.net.stats().bytes_sent, 0u);
}

TEST(Pipeline, FanOutToMultipleDownstreams) {
  Fixture f;
  std::vector<Event> got1, got2;
  auto src = f.pipes.add(0, std::make_unique<TransformComponent>("t", [](const Event& e) {
    return std::vector<Event>{e};
  }));
  auto s1 = f.sink(0, "s1", got1);
  auto s2 = f.sink(1, "s2", got2);
  ASSERT_TRUE(f.pipes.connect(src, s1).is_ok());
  ASSERT_TRUE(f.pipes.connect(src, s2).is_ok());
  f.pipes.inject(src, temp(7.0));
  f.sched.run();
  EXPECT_EQ(got1.size(), 1u);
  EXPECT_EQ(got2.size(), 1u);
}

TEST(Pipeline, RemoveComponentCountsUndeliverable) {
  Fixture f;
  std::vector<Event> got;
  auto a = f.pipes.add(0, std::make_unique<TransformComponent>("t", [](const Event& e) {
    return std::vector<Event>{e};
  }));
  auto b = f.sink(0, "s", got);
  ASSERT_TRUE(f.pipes.connect(a, b).is_ok());
  f.pipes.remove(b);
  f.pipes.inject(a, temp(1.0));
  f.sched.run();
  EXPECT_TRUE(got.empty());
  EXPECT_EQ(f.pipes.stats().undeliverable, 1u);
}

TEST(Pipeline, ConnectRequiresExistingUpstream) {
  Fixture f;
  EXPECT_FALSE(f.pipes.connect(ComponentRef{0, "ghost"}, ComponentRef{0, "x"}).is_ok());
}

TEST(Pipeline, TransformCanSynthesise) {
  Fixture f;
  std::vector<Event> got;
  auto doubler = f.pipes.add(0, std::make_unique<TransformComponent>("d", [](const Event& e) {
    Event out("hot-alert");
    out.set("celsius", e.get_real("celsius").value_or(0) * 2);
    return std::vector<Event>{out, out};
  }));
  auto sink = f.sink(0, "s", got);
  ASSERT_TRUE(f.pipes.connect(doubler, sink).is_ok());
  f.pipes.inject(doubler, temp(10.0));
  f.sched.run();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].type(), "hot-alert");
  EXPECT_DOUBLE_EQ(got[0].get_real("celsius").value(), 20.0);
}

TEST(Pipeline, MovementThresholdDropsSmallMoves) {
  Fixture f;
  std::vector<Event> got;
  auto thresh = f.pipes.add(0, std::make_unique<MovementThresholdFilter>("m", 200.0));
  auto sink = f.sink(0, "s", got);
  ASSERT_TRUE(f.pipes.connect(thresh, sink).is_ok());

  auto loc = [](double lat, double lon) {
    Event e("user-location");
    e.set("user", "bob").set("lat", lat).set("lon", lon);
    return e;
  };
  f.pipes.inject(thresh, loc(56.3400, -2.7950));  // first: always passes
  f.pipes.inject(thresh, loc(56.3401, -2.7950));  // ~11 m: dropped
  f.pipes.inject(thresh, loc(56.3430, -2.7950));  // ~330 m from first: passes
  f.sched.run();
  EXPECT_EQ(got.size(), 2u);
}

TEST(Pipeline, MovementThresholdTracksUsersIndependently) {
  Fixture f;
  std::vector<Event> got;
  auto thresh = f.pipes.add(0, std::make_unique<MovementThresholdFilter>("m", 200.0));
  auto sink = f.sink(0, "s", got);
  ASSERT_TRUE(f.pipes.connect(thresh, sink).is_ok());
  for (const char* user : {"bob", "anna"}) {
    Event e("user-location");
    e.set("user", user).set("lat", 56.34).set("lon", -2.79);
    f.pipes.inject(thresh, e);
  }
  f.sched.run();
  EXPECT_EQ(got.size(), 2u);  // first sighting of each user passes
}

TEST(Pipeline, BufferFlushesByCount) {
  Fixture f;
  std::vector<Event> got;
  auto buffer = f.pipes.add(0, std::make_unique<BufferComponent>("b", 3, duration::hours(1)));
  auto sink = f.sink(0, "s", got);
  ASSERT_TRUE(f.pipes.connect(buffer, sink).is_ok());
  for (int i = 0; i < 7; ++i) f.pipes.inject(buffer, temp(i));
  f.sched.run_for(duration::minutes(1));
  EXPECT_EQ(got.size(), 6u);  // two flushes of 3; 7th still buffered
}

TEST(Pipeline, BufferFlushesByTimer) {
  Fixture f;
  std::vector<Event> got;
  auto buffer = f.pipes.add(0, std::make_unique<BufferComponent>("b", 100, duration::seconds(2)));
  auto sink = f.sink(0, "s", got);
  ASSERT_TRUE(f.pipes.connect(buffer, sink).is_ok());
  f.pipes.inject(buffer, temp(1.0));
  f.sched.run_for(duration::seconds(5));
  EXPECT_EQ(got.size(), 1u);
}

// --- Sensors ---

TEST(Sensors, TemperatureFollowsDiurnalCurve) {
  Fixture f;
  std::vector<Event> got;
  TemperatureSensor::Params p;
  p.base_celsius = 10.0;
  p.amplitude = 10.0;
  p.noise_stddev = 0.1;
  auto sensor = std::make_unique<TemperatureSensor>("t", duration::minutes(30), p);
  auto* raw = sensor.get();
  auto ref = f.pipes.add(0, std::move(sensor));
  auto sink = f.sink(0, "s", got);
  ASSERT_TRUE(f.pipes.connect(ref, sink).is_ok());
  raw->start();
  f.sched.run_for(duration::hours(24));
  raw->stop();
  ASSERT_GE(got.size(), 40u);
  double min = 1e9, max = -1e9;
  for (const auto& e : got) {
    const double c = e.get_real("celsius").value();
    min = std::min(min, c);
    max = std::max(max, c);
  }
  EXPECT_LT(min, 3.0);   // night trough near 0
  EXPECT_GT(max, 17.0);  // afternoon peak near 20
}

TEST(Sensors, GpsStaysInAreaAndMoves) {
  Fixture f;
  std::vector<Event> got;
  GpsSensor::Params p;
  auto sensor = std::make_unique<GpsSensor>("g", duration::seconds(10), p);
  auto* raw = sensor.get();
  auto ref = f.pipes.add(0, std::move(sensor));
  auto sink = f.sink(0, "s", got);
  ASSERT_TRUE(f.pipes.connect(ref, sink).is_ok());
  raw->start();
  f.sched.run_for(duration::minutes(30));
  ASSERT_GE(got.size(), 100u);
  GeoPoint first{got.front().get_real("lat").value(), got.front().get_real("lon").value()};
  GeoPoint last{got.back().get_real("lat").value(), got.back().get_real("lon").value()};
  for (const auto& e : got) {
    EXPECT_TRUE(p.area.contains({e.get_real("lat").value(), e.get_real("lon").value()}));
  }
  EXPECT_GT(geo_distance_m(first, last), 10.0);  // actually walked
}

TEST(Sensors, PresenceEmitsKnownPlaces) {
  Fixture f;
  std::vector<Event> got;
  PresenceSensor::Params p;
  auto sensor = std::make_unique<PresenceSensor>("pr", duration::seconds(30), p);
  auto* raw = sensor.get();
  auto ref = f.pipes.add(0, std::move(sensor));
  auto sink = f.sink(0, "s", got);
  ASSERT_TRUE(f.pipes.connect(ref, sink).is_ok());
  raw->start();
  f.sched.run_for(duration::minutes(30));
  ASSERT_GT(got.size(), 10u);
  for (const auto& e : got) {
    const std::string place = e.get_string("place").value();
    EXPECT_TRUE(place == "library" || place == "lab" || place == "cafe") << place;
  }
}

// --- Bus bridges ---

TEST(BusBridges, PublisherAndSubscriberRoundTrip) {
  Fixture f(8);
  pubsub::SienaNetwork bus(f.net, {6, 7});
  ASSERT_TRUE(bus.connect(6, 7).is_ok());

  std::vector<Event> got;
  auto pub = f.pipes.add(0, std::make_unique<BusPublisher>("pub", bus));
  auto sub = f.pipes.add(
      1, std::make_unique<BusSubscriber>("sub", bus, 1,
                                         Filter().where("type", Op::kEq, "temperature")));
  auto sink = f.sink(1, "s", got);
  ASSERT_TRUE(f.pipes.connect(sub, sink).is_ok());
  f.sched.run();  // let the subscription install

  f.pipes.inject(pub, temp(22.0));
  f.sched.run();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_DOUBLE_EQ(got[0].get_real("celsius").value(), 22.0);
}

// --- Bundle-driven installation ---

struct InstallFixture : Fixture {
  bundle::ThinServerRuntime runtime{net, "secret"};
  bundle::BundleDeployer deployer{net, runtime};

  InstallFixture() : Fixture(8) {
    register_pipeline_installers(runtime, pipes, nullptr);
    for (sim::HostId h = 0; h < 8; ++h) runtime.start_server(h, {"run.pipeline"});
  }

  bundle::DeployResult install(sim::HostId host, const bundle::CodeBundle& b) {
    return runtime.install_local(host, b, b.seal("secret"));
  }
};

TEST(PipelineInstallers, FilterFromBundleWithConnect) {
  InstallFixture f;
  std::vector<Event> got;
  f.sink(2, "downstream", got);

  xml::Element config("config");
  config.set_attribute("filter", "celsius > 15");
  xml::Element link("connect");
  link.set_attribute("host", "2");
  link.set_attribute("component", "downstream");
  config.add_child(std::move(link));
  bundle::CodeBundle b("hotfilter", "pipe.filter", config);
  ASSERT_EQ(f.install(1, b), bundle::DeployResult::kInstalled);

  f.pipes.inject(ComponentRef{1, "hotfilter"}, temp(20.0));
  f.pipes.inject(ComponentRef{1, "hotfilter"}, temp(10.0));
  f.sched.run();
  EXPECT_EQ(got.size(), 1u);
}

TEST(PipelineInstallers, BadFilterRejected) {
  InstallFixture f;
  xml::Element config("config");
  config.set_attribute("filter", "celsius >");
  bundle::CodeBundle b("bad", "pipe.filter", config);
  EXPECT_EQ(f.install(1, b), bundle::DeployResult::kInstallerFailed);
}

TEST(PipelineInstallers, SensorBundleAutostarts) {
  InstallFixture f;
  std::vector<Event> got;
  f.sink(0, "collect", got);
  xml::Element config("config");
  config.set_attribute("period_ms", "60000");
  config.set_attribute("sensor_id", "w1");
  xml::Element link("connect");
  link.set_attribute("host", "0");
  link.set_attribute("component", "collect");
  config.add_child(std::move(link));
  bundle::CodeBundle b("weather", "pipe.sensor.temperature", config);
  ASSERT_EQ(f.install(0, b), bundle::DeployResult::kInstalled);
  f.sched.run_for(duration::minutes(10));
  EXPECT_GE(got.size(), 9u);
  EXPECT_EQ(got[0].get_string("sensor").value(), "w1");
}

TEST(PipelineInstallers, UninstallTearsDownComponent) {
  InstallFixture f;
  xml::Element config("config");
  config.set_attribute("filter", "celsius > 0");
  bundle::CodeBundle b("temp", "pipe.filter", config);
  ASSERT_EQ(f.install(3, b), bundle::DeployResult::kInstalled);
  EXPECT_TRUE(f.pipes.exists(ComponentRef{3, "temp"}));
  EXPECT_TRUE(f.runtime.uninstall(3, "temp"));
  EXPECT_FALSE(f.pipes.exists(ComponentRef{3, "temp"}));
}

TEST(PipelineInstallers, ConnectToUnknownTargetAllowed) {
  // Links may be wired before the downstream component is deployed
  // (deployment order independence); events are undeliverable until it
  // appears.
  InstallFixture f;
  xml::Element config("config");
  config.set_attribute("filter", "celsius > 0");
  xml::Element link("connect");
  link.set_attribute("host", "5");
  link.set_attribute("component", "future");
  config.add_child(std::move(link));
  bundle::CodeBundle b("early", "pipe.filter", config);
  ASSERT_EQ(f.install(1, b), bundle::DeployResult::kInstalled);

  f.pipes.inject(ComponentRef{1, "early"}, temp(5.0));
  f.sched.run();
  // Host 5 has no pipeline runtime yet, so the wire message is dropped
  // at the network layer.
  EXPECT_GE(f.net.stats().messages_dropped, 1u);

  std::vector<Event> got;
  f.sink(5, "future", got);
  f.pipes.inject(ComponentRef{1, "early"}, temp(6.0));
  f.sched.run();
  EXPECT_EQ(got.size(), 1u);
}

}  // namespace
}  // namespace aa::pipeline
