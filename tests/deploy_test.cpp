// Tests for resource advertisement/monitoring, placement constraints,
// the evolution engine's repair loop, and the data placement policies.
#include <gtest/gtest.h>

#include <memory>

#include "deploy/evolution.hpp"
#include "deploy/policies.hpp"
#include "pubsub/siena_network.hpp"
#include "sim/churn.hpp"

namespace aa::deploy {
namespace {

using event::Event;
using event::Filter;
using event::Op;

struct Fixture {
  sim::Scheduler sched;
  std::shared_ptr<sim::Topology> topo;
  sim::Network net;
  pubsub::SienaNetwork bus;
  bundle::ThinServerRuntime runtime{net, "secret"};
  bundle::BundleDeployer deployer{net, runtime};
  int installs = 0;

  explicit Fixture(std::size_t hosts = 16)
      : topo(std::make_shared<sim::UniformTopology>(hosts, duration::millis(5))),
        net(sched, topo),
        bus(net, {0, 1}) {
    (void)bus.connect(0, 1);
    runtime.register_installer("svc", [this](const bundle::CodeBundle&, sim::HostId) {
      ++installs;
      return Result<std::function<void()>>(std::function<void()>([]() {}));
    });
    for (sim::HostId h = 0; h < hosts; ++h) {
      runtime.start_server(h, {"run.svc"});
    }
  }

  bundle::CodeBundle prototype() {
    bundle::CodeBundle b("svc-proto", "svc", xml::Element("config"));
    b.require_capability("run.svc");
    return b;
  }
};

// --- ResourceAdvertiser / ResourceView ---

TEST(Resource, AdvertsPopulateView) {
  Fixture f;
  ResourceAdvertiser adv(f.net, f.bus, duration::seconds(10));
  ResourceView view(f.bus, 0);
  adv.advertise(3, "r1", {"run.svc"}, 2048);
  adv.advertise(4, "r2", {"run.svc", "gpu"});
  f.sched.run_for(duration::seconds(1));

  const auto live = view.live(f.sched.now());
  ASSERT_EQ(live.size(), 2u);
  const auto r1 = view.live_in_region(f.sched.now(), "r1");
  ASSERT_EQ(r1.size(), 1u);
  EXPECT_EQ(r1[0].host, 3u);
  EXPECT_DOUBLE_EQ(r1[0].storage_mb, 2048);
  EXPECT_TRUE(view.hosts().at(4).capabilities.contains("gpu"));
}

TEST(Resource, GracefulWithdrawRemovesFromView) {
  Fixture f;
  ResourceAdvertiser adv(f.net, f.bus, duration::seconds(10));
  ResourceView view(f.bus, 0);
  sim::HostId withdrawn = sim::kNoHost;
  view.on_withdraw = [&](sim::HostId h) { withdrawn = h; };
  adv.advertise(3, "r1", {});
  f.sched.run_for(duration::seconds(1));
  adv.withdraw(3);
  f.sched.run_for(duration::seconds(1));
  EXPECT_EQ(withdrawn, 3u);
  EXPECT_TRUE(view.live(f.sched.now()).empty());
}

TEST(Resource, AdvertTtlExpiresSilentHosts) {
  Fixture f;
  ResourceAdvertiser adv(f.net, f.bus, duration::seconds(10));
  ResourceView view(f.bus, 0, /*ttl=*/duration::seconds(30));
  adv.advertise(3, "r1", {});
  f.sched.run_for(duration::seconds(1));
  EXPECT_EQ(view.live(f.sched.now()).size(), 1u);
  // Host dies silently: adverts stop; TTL ages it out of the view.
  f.net.set_host_up(3, false);
  f.sched.run_for(duration::minutes(2));
  EXPECT_TRUE(view.live(f.sched.now()).empty());
}

TEST(Resource, FailureMonitorDetectsSilentCrash) {
  Fixture f;
  ResourceAdvertiser adv(f.net, f.bus, duration::seconds(5));
  ResourceView view(f.bus, 0);
  FailureMonitor monitor(f.net, f.bus, /*monitor_host=*/5, duration::seconds(5),
                         duration::seconds(2));
  adv.advertise(3, "r1", {});
  adv.advertise(4, "r1", {});
  f.sched.run_for(duration::seconds(8));  // monitor learns both hosts

  f.net.set_host_up(3, false);  // crash, no warning
  f.sched.run_for(duration::seconds(20));
  EXPECT_EQ(monitor.failures_detected(), 1);
  EXPECT_TRUE(view.hosts().at(3).withdrawn);
  EXPECT_FALSE(view.hosts().at(4).withdrawn);
}

// --- Constraints ---

TEST(Constraints, HostQualification) {
  PlacementConstraint c;
  c.region = "r1";
  c.required_capabilities = {"run.svc"};
  HostResources good{3, "r1", {"run.svc", "extra"}, 100, 0, false};
  HostResources wrong_region{4, "r2", {"run.svc"}, 100, 0, false};
  HostResources no_cap{5, "r1", {}, 100, 0, false};
  EXPECT_TRUE(host_qualifies(c, good));
  EXPECT_FALSE(host_qualifies(c, wrong_region));
  EXPECT_FALSE(host_qualifies(c, no_cap));
  c.region.clear();
  EXPECT_TRUE(host_qualifies(c, wrong_region));
}

// --- EvolutionEngine ---

struct EvolutionFixture : Fixture {
  ResourceAdvertiser adv{net, bus, duration::seconds(10)};
  EvolutionEngine engine;

  EvolutionFixture() : Fixture(16), engine(net, bus, runtime, deployer, params()) {
    for (sim::HostId h = 2; h < 16; ++h) {
      adv.advertise(h, h % 2 == 0 ? "r0" : "r1", {"run.svc"});
    }
    sched.run_for(duration::seconds(1));
  }
  static EvolutionEngine::Params params() {
    EvolutionEngine::Params p;
    p.engine_host = 0;
    p.control_period = duration::seconds(5);
    return p;
  }
};

TEST(Evolution, DeploysToSatisfyConstraint) {
  EvolutionFixture f;
  PlacementConstraint c;
  c.id = "five-in-r0";
  c.kind = "replication";
  c.min_instances = 5;  // the paper's example: "at least 5 pipeline
                        // components ... within a given geographical region"
  c.region = "r0";
  c.required_capabilities = {"run.svc"};
  c.prototype = f.prototype();
  f.engine.add_constraint(c);
  f.sched.run_for(duration::seconds(10));

  EXPECT_TRUE(f.engine.satisfied("five-in-r0"));
  EXPECT_EQ(f.engine.live_instances("five-in-r0"), 5);
  EXPECT_EQ(f.installs, 5);
  EXPECT_DOUBLE_EQ(f.engine.satisfaction_fraction(), 1.0);
}

TEST(Evolution, RepairsAfterGracefulDeparture) {
  EvolutionFixture f;
  PlacementConstraint c;
  c.id = "k3";
  c.kind = "svc";
  c.min_instances = 3;
  c.required_capabilities = {"run.svc"};
  c.prototype = f.prototype();
  f.engine.add_constraint(c);
  f.sched.run_for(duration::seconds(10));
  ASSERT_TRUE(f.engine.satisfied("k3"));

  // Gracefully retire a host that received an instance.
  sim::HostId victim = sim::kNoHost;
  for (sim::HostId h = 2; h < 16; ++h) {
    if (!f.runtime.installed_names(h).empty()) {
      victim = h;
      break;
    }
  }
  ASSERT_NE(victim, sim::kNoHost);
  f.adv.withdraw(victim);
  f.net.set_host_up(victim, false);
  f.sched.run_for(duration::seconds(30));

  EXPECT_TRUE(f.engine.satisfied("k3"));
  EXPECT_GE(f.engine.stats().violations_observed, 1u);
  EXPECT_GE(f.installs, 4);  // original 3 + at least 1 repair
}

TEST(Evolution, UnsatisfiableWithoutQualifyingHosts) {
  EvolutionFixture f;
  PlacementConstraint c;
  c.id = "impossible";
  c.kind = "svc";
  c.min_instances = 1;
  c.required_capabilities = {"quantum-coprocessor"};
  c.prototype = f.prototype();
  f.engine.add_constraint(c);
  f.sched.run_for(duration::seconds(20));
  EXPECT_FALSE(f.engine.satisfied("impossible"));
  EXPECT_DOUBLE_EQ(f.engine.satisfaction_fraction(), 0.0);
}

TEST(Evolution, RemoveConstraintRetiresInstances) {
  EvolutionFixture f;
  PlacementConstraint c;
  c.id = "tmp";
  c.kind = "svc";
  c.min_instances = 2;
  c.required_capabilities = {"run.svc"};
  c.prototype = f.prototype();
  f.engine.add_constraint(c);
  f.sched.run_for(duration::seconds(10));
  ASSERT_EQ(f.engine.live_instances("tmp"), 2);

  EXPECT_TRUE(f.engine.remove_constraint("tmp"));
  EXPECT_EQ(f.engine.stats().retirements, 2u);
  int remaining = 0;
  for (sim::HostId h = 0; h < 16; ++h) remaining += static_cast<int>(f.runtime.installed_names(h).size());
  EXPECT_EQ(remaining, 0);
}

TEST(Evolution, SpreadsLoadAcrossHosts) {
  EvolutionFixture f;
  for (int i = 0; i < 4; ++i) {
    PlacementConstraint c;
    c.id = "c" + std::to_string(i);
    c.kind = "svc";
    c.min_instances = 3;
    c.required_capabilities = {"run.svc"};
    c.prototype = f.prototype();
    c.prototype.set_name("proto-" + std::to_string(i));
    f.engine.add_constraint(c);
  }
  f.sched.run_for(duration::seconds(20));
  // 12 instances over 14 candidate hosts: no host should have 3+.
  for (sim::HostId h = 2; h < 16; ++h) {
    EXPECT_LE(f.runtime.installed_names(h).size(), 2u) << "host " << h;
  }
}

// --- Placement policies ---

struct PolicyFixture {
  sim::Scheduler sched;
  std::shared_ptr<sim::TransitStubTopology> topo;
  sim::Network net;
  pubsub::SienaNetwork bus;
  overlay::OverlayNetwork overlay;
  storage::ObjectStore store;
  std::map<sim::HostId, std::string> regions;

  PolicyFixture()
      : topo(std::make_shared<sim::TransitStubTopology>(16, ts_params())),
        net(sched, topo),
        bus(net, {0, 1}),
        overlay(net, ov_params()),
        store(net, overlay, st_params()) {
    (void)bus.connect(0, 1);
    std::vector<sim::HostId> hosts;
    for (sim::HostId h = 0; h < 16; ++h) {
      hosts.push_back(h);
      regions[h] = "r" + std::to_string(topo->region_of(h));
    }
    overlay.build_ring(hosts);
    store.sync_hosts();  // overlay members joined after store creation
  }
  static sim::TransitStubTopology::Params ts_params() {
    sim::TransitStubTopology::Params p;
    p.regions = 4;
    return p;
  }
  static overlay::OverlayNetwork::Params ov_params() {
    overlay::OverlayNetwork::Params p;
    p.maintenance_period = 0;
    return p;
  }
  static storage::ObjectStore::Params st_params() {
    storage::ObjectStore::Params p;
    p.replicas = 2;
    return p;
  }
};

TEST(Policies, BackupLandsInDifferentRegion) {
  PolicyFixture f;
  BackupPolicy backup(f.net, f.overlay, f.store, f.regions);
  const ObjectId id = f.store.put(0, to_bytes("precious data"));
  f.sched.run();
  f.sched.run();
  backup.object_created(0, id);
  f.sched.run();
  EXPECT_EQ(backup.backups(), 1u);
  // Some replica now lives outside host 0's region.
  bool remote_copy = false;
  for (sim::HostId h = 0; h < 16; ++h) {
    if (f.regions[h] != f.regions[0] && f.store.node(h)->replica(id) != nullptr) {
      remote_copy = true;
    }
  }
  EXPECT_TRUE(remote_copy);
}

TEST(Policies, LatencyPolicyMigratesDataTowardUser) {
  PolicyFixture f;
  PersonalDataDirectory directory;
  // Bob's personal data: 3 objects.
  std::vector<ObjectId> ids;
  for (int i = 0; i < 3; ++i) {
    ids.push_back(f.store.put(0, to_bytes("bob-data-" + std::to_string(i))));
  }
  f.sched.run();
  for (const auto& id : ids) directory.add("bob", id);

  RegionMap geo;  // map lat bands to region labels r0..r3
  for (int r = 0; r < 4; ++r) {
    geo.add(GeoRegion{"r" + std::to_string(r), r * 10.0, r * 10.0 + 10.0, -10.0, 10.0});
  }
  LatencyReductionPolicy::Params params;
  params.policy_host = 0;
  params.sweep_period = duration::seconds(10);
  params.objects_per_sweep = 1;
  LatencyReductionPolicy policy(f.net, f.bus, f.store, directory, f.regions, geo, params);
  f.sched.run_for(duration::seconds(1));  // let the subscription propagate

  // Bob shows up in region r2 and stays.
  Event loc("user-location");
  loc.set("user", "bob").set("lat", 25.0).set("lon", 0.0);
  f.bus.publish(5, loc);
  f.sched.run_for(duration::seconds(45));  // several sweeps

  EXPECT_EQ(policy.user_region("bob"), "r2");
  EXPECT_GE(policy.migrations(), 3u);
  // All three objects now have replicas on hosts in r2.
  int local = 0;
  for (const auto& id : ids) {
    for (sim::HostId h = 0; h < 16; ++h) {
      if (f.regions[h] == "r2" && f.store.node(h)->replica(id) != nullptr) {
        ++local;
        break;
      }
    }
  }
  EXPECT_EQ(local, 3);
}

TEST(Policies, MovingResetsProgression) {
  PolicyFixture f;
  PersonalDataDirectory directory;
  directory.add("bob", f.store.put(0, to_bytes("d")));
  f.sched.run();

  RegionMap geo;
  geo.add(GeoRegion{"r0", 0, 10, -10, 10});
  geo.add(GeoRegion{"r1", 10, 20, -10, 10});
  LatencyReductionPolicy::Params params;
  params.sweep_period = duration::seconds(10);
  LatencyReductionPolicy policy(f.net, f.bus, f.store, directory, f.regions, geo, params);
  f.sched.run_for(duration::seconds(1));

  Event loc("user-location");
  loc.set("user", "bob").set("lat", 5.0).set("lon", 0.0);
  f.bus.publish(5, loc);
  f.sched.run_for(duration::seconds(25));
  const auto first = policy.migrations();
  EXPECT_GE(first, 1u);

  Event loc2("user-location");
  loc2.set("user", "bob").set("lat", 15.0).set("lon", 0.0);  // moved to r1
  f.bus.publish(5, loc2);
  f.sched.run_for(duration::seconds(25));
  EXPECT_GT(policy.migrations(), first);  // re-replicated at the new region
}

}  // namespace
}  // namespace aa::deploy
