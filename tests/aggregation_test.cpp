// Proof harness for covering-based subscription merging and the
// partitioned broker tier (event/filter_summary, pubsub/broker
// aggregation mode, pubsub/shard_router).
//
// Three layers of evidence, mirroring the guarantees DESIGN.md §11
// claims:
//
//   1. Property/fuzz suite over merge_filters and the covering lattice:
//      merge soundness (any event matching an input matches the join),
//      covers() antisymmetry/transitivity, and FilterSummary fold
//      determinism + unmerge correctness.  5k randomized iterations
//      under the asan preset, a smaller seed-pinned sweep in tier-1.
//   2. Broker-level semantics: interior brokers hold one merged entry
//      per partition group, unmerge narrows without stranding or
//      over-pruning siblings, retraction removes the entry.
//   3. End-to-end oracles: a 21-seed chaos sweep (link faults, two
//      partition windows, a mid-run broker crash/recover on PR 6
//      checkpoints) whose aggregated delivery digests must be
//      bit-identical to the unaggregated fault-free oracle, plus a
//      shard-crash-during-Zipf-hotspot scenario on the BrokerShardRouter.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "event/filter_summary.hpp"
#include "pubsub/shard_router.hpp"
#include "pubsub/siena_network.hpp"
#include "sim/churn.hpp"
#include "sim/durable_disk.hpp"

namespace aa {
namespace {

using event::AttrValue;
using event::Constraint;
using event::Event;
using event::Filter;
using event::FilterSummary;
using event::Op;
using event::merge_filters;
using pubsub::BrokerAggregationParams;
using pubsub::SienaNetwork;

// 5k fuzz iterations under ASan (the preset that hunts for lifetime
// bugs in the merge path); a faster seed-pinned sweep everywhere else.
#if defined(__SANITIZE_ADDRESS__)
constexpr int kFuzzIters = 5000;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
constexpr int kFuzzIters = 5000;
#else
constexpr int kFuzzIters = 800;
#endif
#else
constexpr int kFuzzIters = 800;
#endif

// --- Randomized filter/event generators ----------------------------------
//
// Small value pools keep collision probability high, so sampled events
// actually exercise the match/cover boundaries instead of vacuously
// missing every filter.

const std::vector<std::string>& attr_pool() {
  static const std::vector<std::string> attrs{"type", "value", "name", "zone"};
  return attrs;
}

const std::vector<std::string>& string_pool() {
  static const std::vector<std::string> strings{"t0",    "t1",   "t12",  "alpha",
                                                "alp",   "beta", "north", "no"};
  return strings;
}

AttrValue random_value(Rng& rng) {
  switch (rng.below(4)) {
    case 0: return AttrValue(string_pool()[rng.below(string_pool().size())]);
    case 1: return AttrValue(static_cast<std::int64_t>(rng.below(16)) - 5);
    case 2: return AttrValue((static_cast<double>(rng.below(32)) - 10.0) / 2.0);
    default: return AttrValue(rng.chance(0.5));
  }
}

Constraint random_constraint(Rng& rng) {
  const std::string& attr = attr_pool()[rng.below(attr_pool().size())];
  const Op op = static_cast<Op>(rng.below(10));
  switch (op) {
    case Op::kExists:
      return Constraint(attr, op);
    case Op::kPrefix:
    case Op::kSuffix:
    case Op::kSubstring:
      return Constraint(attr, op, AttrValue(string_pool()[rng.below(string_pool().size())]));
    default:
      return Constraint(attr, op, random_value(rng));
  }
}

Filter random_filter(Rng& rng, std::size_t max_constraints = 3) {
  std::vector<Constraint> cs;
  const std::size_t n = 1 + rng.below(max_constraints);
  for (std::size_t i = 0; i < n; ++i) cs.push_back(random_constraint(rng));
  return Filter(std::move(cs));
}

Event random_event(Rng& rng) {
  Event e("fuzz");
  for (const std::string& attr : attr_pool()) {
    if (rng.chance(0.2)) continue;  // sometimes absent: exercises kExists
    e.set(attr, random_value(rng));
  }
  return e;
}

// --- 1. Property/fuzz suite ----------------------------------------------

TEST(AggregationProperty, MergeSoundnessFuzz) {
  Rng rng(0xA66u);
  std::uint64_t input_matches = 0;
  for (int iter = 0; iter < kFuzzIters; ++iter) {
    const Filter a = random_filter(rng);
    const Filter b = random_filter(rng);
    const Filter merged = merge_filters(a, b);

    // Structural: the join covers both inputs, and is symmetric (the
    // canonical ordering makes merge history invisible).
    EXPECT_TRUE(merged.covers(a)) << merged.describe() << " !covers " << a.describe();
    EXPECT_TRUE(merged.covers(b)) << merged.describe() << " !covers " << b.describe();
    const Filter flipped = merge_filters(b, a);
    EXPECT_EQ(merged, flipped)
        << "a=" << a.describe() << " b=" << b.describe() << " ab=" << merged.describe()
        << " ba=" << flipped.describe();

    // Semantic: false positives only — no event matched by an input may
    // escape the merged filter.
    for (int s = 0; s < 24; ++s) {
      const Event e = random_event(rng);
      if (a.matches(e) || b.matches(e)) {
        ++input_matches;
        EXPECT_TRUE(merged.matches(e))
            << "event escaped the join: a=" << a.describe() << " b=" << b.describe()
            << " merged=" << merged.describe();
      }
    }
  }
  // The sweep exercised real matches, not vacuous misses.
  EXPECT_GT(input_matches, static_cast<std::uint64_t>(kFuzzIters));
}

TEST(AggregationProperty, CoversLatticeFuzz) {
  Rng rng(0xC0FEu);
  std::uint64_t covering_pairs = 0;
  for (int iter = 0; iter < kFuzzIters; ++iter) {
    const Filter a = random_filter(rng);
    const Filter b = random_filter(rng);
    const Filter c = random_filter(rng);

    // Soundness: covers(a, b) means every b-match is an a-match.
    if (a.covers(b)) {
      ++covering_pairs;
      for (int s = 0; s < 16; ++s) {
        const Event e = random_event(rng);
        if (b.matches(e)) {
          EXPECT_TRUE(a.matches(e))
              << a.describe() << " claims to cover " << b.describe();
        }
      }
    }
    // Antisymmetry (up to semantic equivalence): mutual covering means
    // the two filters match the same events.
    if (a.covers(b) && b.covers(a)) {
      for (int s = 0; s < 16; ++s) {
        const Event e = random_event(rng);
        EXPECT_EQ(a.matches(e), b.matches(e))
            << a.describe() << " <-> " << b.describe();
      }
    }
    // Transitivity: covering chains along the broker overlay compose.
    if (a.covers(b) && b.covers(c)) {
      EXPECT_TRUE(a.covers(c)) << a.describe() << " -> " << b.describe() << " -> "
                               << c.describe();
    }
  }
  EXPECT_GT(covering_pairs, 0u);
}

TEST(AggregationProperty, SummaryFoldDeterminismAndUnmerge) {
  Rng rng(0x5EEDu);
  for (int iter = 0; iter < kFuzzIters / 8; ++iter) {
    FilterSummary summary;
    std::map<std::uint64_t, Filter> members;
    for (int step = 0; step < 12; ++step) {
      if (!members.empty() && rng.chance(0.3)) {
        // Unmerge a random member.
        auto it = members.begin();
        std::advance(it, static_cast<long>(rng.below(members.size())));
        summary.remove(it->first);
        members.erase(it);
      } else {
        const std::uint64_t id = 1 + rng.below(20);
        const Filter f = random_filter(rng);
        summary.add(id, f);
        members[id] = f;
      }
      ASSERT_EQ(summary.size(), members.size());
      // Unmerge never strands a sibling: at every point the summary
      // covers every remaining member (semantically: their matches are
      // the summary's matches).
      for (const auto& [id, f] : members) {
        EXPECT_TRUE(summary.summary().covers(f))
            << summary.summary().describe() << " !covers member " << f.describe();
      }
      // Determinism: the summary is a pure function of the member set —
      // rebuilding from scratch in any insertion order gives the same
      // filter, so a recovered broker re-announces identical aggregates.
      FilterSummary rebuilt;
      for (const auto& [id, f] : members) rebuilt.add(id, f);
      EXPECT_EQ(summary.summary(), rebuilt.summary());
    }
  }
}

TEST(AggregationProperty, MergeKnownJoins) {
  // Pinned examples documenting what the join computes.
  const Filter eq5 = Filter().where("v", Op::kEq, 5);
  const Filter eq9 = Filter().where("v", Op::kEq, 9);
  const Filter hull = merge_filters(eq5, eq9);
  // Two pins widen to their numeric hull, not to match-all.
  EXPECT_TRUE(hull.matches(Event("e").set("v", 7)));
  EXPECT_FALSE(hull.matches(Event("e").set("v", 4)));
  EXPECT_FALSE(hull.matches(Event("e").set("v", 10)));

  // String pins widen to their longest common prefix.
  const Filter t0 = Filter().where("t", Op::kEq, "t0");
  const Filter t12 = Filter().where("t", Op::kEq, "t12");
  const Filter pre = merge_filters(t0, t12);
  EXPECT_TRUE(pre.matches(Event("e").set("t", "t7")));
  EXPECT_FALSE(pre.matches(Event("e").set("t", "x0")));

  // Attributes constrained on only one side are dropped.
  const Filter left = Filter().where("a", Op::kGt, 1).where("b", Op::kEq, "x");
  const Filter right = Filter().where("a", Op::kGt, 3);
  const Filter joined = merge_filters(left, right);
  EXPECT_TRUE(joined.matches(Event("e").set("a", 2)));   // hull of the bounds
  EXPECT_FALSE(joined.matches(Event("e").set("a", 0)));
  EXPECT_TRUE(joined.covers(left));
  EXPECT_TRUE(joined.covers(right));

  // Disjoint attribute sets join to match-all (the only sound answer).
  EXPECT_TRUE(merge_filters(Filter().where("a", Op::kEq, 1),
                            Filter().where("b", Op::kEq, 2))
                  .empty());
}

// --- 2. Broker-level aggregation semantics --------------------------------

struct BusFixture {
  sim::Scheduler sched;
  std::shared_ptr<sim::UniformTopology> topo;
  sim::Network net;
  explicit BusFixture(std::size_t hosts = 16)
      : topo(std::make_shared<sim::UniformTopology>(hosts, duration::millis(5))),
        net(sched, topo) {}
};

Event temp_event(const std::string& type, double celsius, const std::string& key) {
  Event e(type);
  e.set("celsius", celsius);
  e.set("key", key);
  return e;
}

TEST(Aggregation, InteriorBrokerHoldsOneEntryPerGroup) {
  // Chain 0-1-2; many clients on broker 0 subscribe overlapping filters
  // pinned to the same type.  Without aggregation broker 1 carries one
  // entry per uncovered subscription; with it, one merged entry per
  // (neighbour, group) — constant in client count.
  BusFixture f;
  SienaNetwork ps(f.net, {0, 1, 2});
  (void)ps.connect(0, 1);
  (void)ps.connect(1, 2);
  ps.enable_aggregation(BrokerAggregationParams{"type", 4});
  ps.attach_client(3, 0);  // subscribers at one chain end...
  ps.attach_client(6, 2);  // ...publisher at the other: events transit 1

  int delivered = 0;
  for (int i = 0; i < 12; ++i) {
    const double lo = 10.0 + static_cast<double>(i);
    ps.subscribe(3, Filter()
                        .where("type", Op::kEq, "temp")
                        .where("celsius", Op::kGe, lo)
                        .where("celsius", Op::kLe, lo + 5.0),
                 [&delivered](const Event&) { ++delivered; });
  }
  f.sched.run();

  // Broker 0 (edge) holds all 12 exact filters; brokers 1 and 2 hold
  // exactly one aggregated entry each.
  EXPECT_EQ(ps.broker(0)->table_size(), 12u);
  EXPECT_EQ(ps.broker(1)->table_size(), 1u);
  EXPECT_EQ(ps.broker(2)->table_size(), 1u);
  EXPECT_EQ(ps.broker(0)->aggregate_count(), 1u);

  // The merged entry is the hull [10, 26]: events inside any member
  // range deliver, events inside the hull but outside every member are
  // false positives that edge-exact matching discards.
  ps.publish(6, temp_event("temp", 12.0, "a"));  // members [10,15],[11,16],[12,17]
  f.sched.run();
  EXPECT_EQ(delivered, 3);
  ps.publish(6, temp_event("temp", 50.0, "b"));  // outside the hull
  f.sched.run();
  EXPECT_EQ(delivered, 3);
}

TEST(Aggregation, UnmergeNarrowsWithoutStrandingSiblings) {
  // Unsubscribing a merged member must (a) keep every sibling's
  // deliveries intact and (b) actually narrow the upstream entry when
  // the departing member was load-bearing — never over-prune.
  BusFixture f;
  SienaNetwork ps(f.net, {0, 1, 2});
  (void)ps.connect(0, 1);
  (void)ps.connect(1, 2);
  ps.enable_aggregation(BrokerAggregationParams{"type", 4});
  ps.attach_client(3, 0);
  ps.attach_client(6, 2);

  int wide = 0, narrow = 0;
  const auto wide_id = ps.subscribe(3, Filter()
                                           .where("type", Op::kEq, "temp")
                                           .where("celsius", Op::kGe, 0.0)
                                           .where("celsius", Op::kLe, 100.0),
                                    [&wide](const Event&) { ++wide; });
  const auto narrow_id = ps.subscribe(3, Filter()
                                             .where("type", Op::kEq, "temp")
                                             .where("celsius", Op::kGe, 40.0)
                                             .where("celsius", Op::kLe, 60.0),
                                      [&narrow](const Event&) { ++narrow; });
  f.sched.run();
  const auto before = ps.total_broker_stats();

  ps.publish(6, temp_event("temp", 5.0, "a"));
  f.sched.run();
  EXPECT_EQ(wide, 1);
  EXPECT_EQ(narrow, 0);

  ps.unsubscribe(3, wide_id);
  f.sched.run();
  // The aggregate narrowed in place (an update, not a retraction).
  const auto after = ps.total_broker_stats();
  EXPECT_GT(after.aggregate_updates, before.aggregate_updates);
  EXPECT_EQ(after.aggregate_retractions, before.aggregate_retractions);
  EXPECT_EQ(ps.broker(1)->table_size(), 1u);

  // Sibling still delivers (not stranded)...
  ps.publish(6, temp_event("temp", 50.0, "b"));
  f.sched.run();
  EXPECT_EQ(narrow, 1);
  EXPECT_EQ(wide, 1);
  // ...and the hull actually shrank: events only the departed member
  // wanted are now pruned at the publisher's edge broker and never
  // cross the interior of the chain.
  const auto routed_before = ps.broker(1)->stats().publications_routed;
  ps.publish(6, temp_event("temp", 5.0, "c"));
  f.sched.run();
  EXPECT_EQ(wide, 1);
  EXPECT_EQ(narrow, 1);
  EXPECT_EQ(ps.broker(1)->stats().publications_routed, routed_before);

  // Retraction: the last member leaving removes the upstream entry.
  ps.unsubscribe(3, narrow_id);
  f.sched.run();
  EXPECT_EQ(ps.broker(1)->table_size(), 0u);
  EXPECT_EQ(ps.broker(2)->table_size(), 0u);
  EXPECT_GT(ps.total_broker_stats().aggregate_retractions, before.aggregate_retractions);
}

// --- 3. End-to-end oracles -------------------------------------------------

// Per-client sorted delivery digest (duplicates show as repeated keys).
using Digest = std::map<sim::HostId, std::vector<std::string>>;

sim::ReliableParams chaos_reliable_params() {
  sim::ReliableParams rp;
  rp.initial_rto = duration::millis(40);
  rp.backoff = 2.0;
  rp.max_rto = duration::seconds(1);
  rp.max_retries = 30;
  return rp;
}

struct AggScenarioResult {
  Digest digest;
  std::uint64_t deliveries = 0;
  std::uint64_t give_ups = 0;
  std::uint64_t incarnation_give_ups = 0;
  std::uint64_t dropped_by_fault = 0;
  std::size_t transit_entries = 0;
  std::size_t stalled_left = 0;
  pubsub::BrokerStats broker;
};

// The chaos harness from tests/chaos_test.cpp, with two twists: the
// overlay can run in aggregation mode, and broker 1 (an interior broker
// with NO co-located client, so its crash cannot eat deliveries of its
// own host) can crash mid-run and recover from PR 6 checkpoints.
AggScenarioResult run_agg_scenario(bool aggregated, bool reliable,
                                   std::function<void(sim::Network&, sim::Scheduler&)> mutate,
                                   bool crash, std::uint64_t seed) {
  AggScenarioResult result;
  sim::Scheduler sched;
  auto topo = std::make_shared<sim::UniformTopology>(8, duration::millis(5));
  sim::Network net(sched, topo);
  SienaNetwork ps(net, {0, 1, 2, 3, 4, 5, 6, 7});
  ps.connect_tree(2);  // edges: 0-1, 0-2, 1-3, 1-4, 2-5, 2-6, 3-7
  if (aggregated) ps.enable_aggregation(BrokerAggregationParams{"type", 4});
  if (reliable) ps.enable_reliable_transport(chaos_reliable_params());
  sim::DiskParams dp;
  dp.fsync_latency = duration::millis(5);
  dp.seed = seed * 7 + 3;
  sim::DurableDisk disk(net, dp);
  sim::ChurnInjector churn(net, {});
  if (crash) {
    ps.enable_broker_checkpoints(disk);
    ps.attach_churn(churn);
  }

  // Clients co-located with every broker except the crash victim.
  std::vector<sim::HostId> client_hosts{0, 2, 3, 4, 5, 6, 7};
  Digest& digest = result.digest;
  for (sim::HostId h : client_hosts) {
    digest[h];
    ps.attach_client(h, h);
    ps.subscribe(h, Filter().where("type", Op::kEq, "t" + std::to_string(h % 4)),
                 [&digest, h](const Event& e) {
                   digest[h].push_back(e.get_string("key").value_or("?"));
                 });
  }
  sched.run();  // quiesce subscriptions on a clean network
  net.reset_stats();

  if (mutate) mutate(net, sched);
  if (crash) {
    sched.after(duration::millis(420) + duration::micros(137),
                [&churn] { churn.kill(1, /*graceful=*/false); });
    sched.after(duration::millis(560), [&churn] { churn.revive(1); });
  }

  // 7 publishers x 25 rounds, one publish every 5 ms (runs ~5-880 ms,
  // spanning both partition windows and the crash).
  for (int r = 0; r < 25; ++r) {
    for (std::size_t i = 0; i < client_hosts.size(); ++i) {
      const sim::HostId p = client_hosts[i];
      const SimDuration when = duration::millis(5) * static_cast<SimDuration>(
                                   r * static_cast<int>(client_hosts.size()) +
                                   static_cast<int>(i) + 1);
      sched.after(when, [&ps, p, r] {
        Event e("t" + std::to_string((static_cast<int>(p) + r) % 4));
        e.set("key", "p" + std::to_string(p) + "r" + std::to_string(r));
        ps.publish(p, e);
      });
    }
  }
  sched.run();

  for (const auto& [h, keys] : digest) result.deliveries += keys.size();
  for (auto& [h, keys] : digest) std::sort(keys.begin(), keys.end());
  if (ps.reliable_transport() != nullptr) {
    result.give_ups = ps.reliable_transport()->stats().give_ups;
    result.incarnation_give_ups = ps.reliable_transport()->stats().incarnation_give_ups;
  }
  result.dropped_by_fault = net.stats().dropped_by_fault;
  result.transit_entries = ps.total_transit_entries();
  result.stalled_left = ps.stalled_packets();
  result.broker = ps.total_broker_stats();
  return result;
}

void install_chaos(std::uint64_t seed, sim::Network& net, sim::Scheduler& sched) {
  sim::LinkFaults faults;
  faults.drop = 0.10;
  faults.duplicate = 0.05;
  faults.reorder = 0.10;
  faults.jitter = duration::millis(2);
  faults.seed = seed;
  net.set_link_faults(faults);
  sched.after(duration::millis(200),
              [&net] { net.partition("cut-a", {0, 1, 3, 4, 7}, {2, 5, 6}); });
  sched.after(duration::millis(500), [&net] { net.heal("cut-a"); });
  sched.after(duration::millis(600),
              [&net] { net.partition("cut-b", {0, 2, 5, 6}, {1, 3, 4, 7}); });
  sched.after(duration::millis(900), [&net] { net.heal("cut-b"); });
}

TEST(AggregationChaos, CleanRunMatchesUnaggregatedOracle) {
  const AggScenarioResult oracle =
      run_agg_scenario(/*aggregated=*/false, /*reliable=*/false, nullptr, false, 1);
  // 175 events, each type matching 1-2 of the 7 subscribers.
  ASSERT_GT(oracle.deliveries, 0u);
  const AggScenarioResult agg =
      run_agg_scenario(/*aggregated=*/true, /*reliable=*/false, nullptr, false, 1);
  EXPECT_EQ(agg.digest, oracle.digest);
  EXPECT_GT(agg.broker.aggregate_updates, 0u);
  // Merging compresses interior routing state on the same workload.
  EXPECT_LE(agg.transit_entries, oracle.transit_entries);
}

TEST(AggregationChaos, SeedSweepWithCrashRecoverMatchesOracle) {
  // The tentpole no-lost-delivery proof: 21 chaos seeds with 10% link
  // loss, duplication, reordering, two partition windows AND a mid-run
  // crash/recover of interior broker 1 — the aggregated overlay must
  // reproduce the unaggregated fault-free oracle digest bit-for-bit.
  const AggScenarioResult oracle =
      run_agg_scenario(/*aggregated=*/false, /*reliable=*/false, nullptr, false, 1);
  for (std::uint64_t seed = 1; seed <= 21; ++seed) {
    const AggScenarioResult chaos = run_agg_scenario(
        /*aggregated=*/true, /*reliable=*/true,
        [seed](sim::Network& net, sim::Scheduler& sched) { install_chaos(seed, net, sched); },
        /*crash=*/true, seed);
    EXPECT_EQ(chaos.digest, oracle.digest) << "seed " << seed;
    // Every transport give-up was an incarnation change (the crash),
    // never retry exhaustion, and everything parked was re-flushed.
    EXPECT_EQ(chaos.give_ups, chaos.incarnation_give_ups) << "seed " << seed;
    EXPECT_EQ(chaos.stalled_left, 0u) << "seed " << seed;
    // The run was not vacuous: faults dropped packets, the broker
    // actually crashed, recovered from its checkpoint, and re-merged.
    EXPECT_GT(chaos.dropped_by_fault, 0u) << "seed " << seed;
    EXPECT_GE(chaos.broker.recoveries, 1u) << "seed " << seed;
    EXPECT_GT(chaos.broker.aggregate_updates, 0u) << "seed " << seed;
  }
}

// --- Shard router ----------------------------------------------------------

TEST(ShardRouter, PinnedAndWildcardRoutingIsExactlyOnce) {
  BusFixture f(16);
  std::vector<sim::HostId> brokers{0, 1, 2, 3};
  pubsub::ShardRouterParams params;
  params.partition_attribute = "topic";
  params.shards = 2;
  params.aggregation = true;
  pubsub::BrokerShardRouter router(f.net, brokers, params);
  ASSERT_EQ(router.shard_count(), 2u);

  int pinned = 0, wildcard = 0;
  router.attach_client(10);
  router.attach_client(11);
  router.subscribe(10, Filter().where("topic", Op::kEq, "k0"),
                   [&pinned](const Event&) { ++pinned; });
  const auto wild_id = router.subscribe(
      10, Filter().where("value", Op::kGt, 5.0), [&wildcard](const Event&) { ++wildcard; });
  f.sched.run();
  EXPECT_EQ(router.stats().pinned_subscriptions, 1u);
  EXPECT_EQ(router.stats().broadcast_subscriptions, 1u);

  // A pinned event lands on one shard; both the pinned subscriber and
  // the wildcard subscriber see it exactly once.
  Event e0("reading");
  e0.set("topic", "k0");
  e0.set("value", 7.0);
  router.publish(11, e0);
  f.sched.run();
  EXPECT_EQ(pinned, 1);
  EXPECT_EQ(wildcard, 1);

  // A different partition: the pinned subscriber is not on that shard,
  // the wildcard one is (it is everywhere) — still exactly once.
  Event e1("reading");
  e1.set("topic", "k1");
  e1.set("value", 9.0);
  router.publish(11, e1);
  f.sched.run();
  EXPECT_EQ(pinned, 1);
  EXPECT_EQ(wildcard, 2);

  // An event without the partition attribute routes to shard 0 only —
  // wildcard subscribers still see it exactly once.
  Event e2("reading");
  e2.set("value", 11.0);
  router.publish(11, e2);
  f.sched.run();
  EXPECT_EQ(wildcard, 3);
  EXPECT_EQ(router.stats().pinned_publishes, 2u);
  EXPECT_EQ(router.stats().unpinned_publishes, 1u);

  router.unsubscribe(10, wild_id);
  f.sched.run();
  router.publish(11, e2);
  f.sched.run();
  EXPECT_EQ(wildcard, 3);  // unsubscribed on every shard
}

struct ShardCrashResult {
  Digest digest;
  std::uint64_t deliveries = 0;
  std::vector<std::uint64_t> recovered_per_shard;
  std::uint64_t recoveries = 0;
};

// Shard-crash during Zipf hotspot load: 3 shards, each a 3-broker chain
// with clients split across the chain ends so cross-end deliveries
// transit the middle broker.  The crash victim is the middle broker of
// the shard owning the hottest partition.
ShardCrashResult run_shard_crash_scenario(bool crash, std::uint64_t seed) {
  ShardCrashResult result;
  sim::Scheduler sched;
  auto topo = std::make_shared<sim::UniformTopology>(15, duration::millis(5));
  sim::Network net(sched, topo);
  std::vector<sim::HostId> brokers{0, 1, 2, 3, 4, 5, 6, 7, 8};
  pubsub::ShardRouterParams params;
  params.partition_attribute = "topic";
  params.shards = 3;
  params.tree_fanout = 1;  // each shard is a chain: (3s) - (3s+1) - (3s+2)
  params.aggregation = true;
  params.aggregation_groups = 4;
  pubsub::BrokerShardRouter router(net, brokers, params);
  router.enable_reliable_transport(chaos_reliable_params());
  sim::DiskParams dp;
  dp.fsync_latency = duration::millis(5);
  dp.seed = seed * 7 + 3;
  sim::DurableDisk disk(net, dp);
  router.enable_broker_checkpoints(disk);
  sim::ChurnInjector churn(net, {});
  router.attach_churn(churn);

  // Clients 9..14: even clients at each chain's front broker, odd at
  // the back — the middle broker is pure transit.
  Digest& digest = result.digest;
  for (sim::HostId c = 9; c <= 14; ++c) {
    digest[c];
    for (std::size_t s = 0; s < router.shard_count(); ++s) {
      router.shard(s).attach_client(
          c, static_cast<sim::HostId>(3 * s + (c % 2 == 0 ? 0 : 2)));
    }
  }
  // Each client subscribes to two topics with a value window.
  Rng sub_rng(0x57AB5u);  // workload identical across oracle/crash runs
  for (sim::HostId c = 9; c <= 14; ++c) {
    for (int k = 0; k < 2; ++k) {
      const std::string topic = "k" + std::to_string(sub_rng.below(8));
      const double lo = static_cast<double>(sub_rng.below(5)) * 10.0;
      router.subscribe(c, Filter()
                              .where("topic", Op::kEq, topic)
                              .where("value", Op::kGe, lo)
                              .where("value", Op::kLe, lo + 30.0),
                       [&digest, c](const Event& e) {
                         digest[c].push_back(e.get_string("key").value_or("?"));
                       });
    }
  }
  sched.run();  // quiesce
  net.reset_stats();

  // The hottest partition is the Zipf head "k0"; crash the middle
  // broker of the shard that owns it, mid-load.
  const std::size_t hot_shard = router.shard_of_value(AttrValue("k0"));
  const sim::HostId victim = static_cast<sim::HostId>(3 * hot_shard + 1);
  if (crash) {
    sched.after(duration::millis(402) + duration::micros(337),
                [&churn, victim] { churn.kill(victim, /*graceful=*/false); });
    sched.after(duration::millis(752), [&churn, victim] { churn.revive(victim); });
  }

  // Zipf hotspot publish load: 25 rounds x 6 publishers every 5 ms.
  ZipfSampler zipf(8, 1.0);
  Rng pub_rng(0xB0B5u);  // same schedule in both runs
  for (int r = 0; r < 25; ++r) {
    for (sim::HostId p = 9; p <= 14; ++p) {
      const std::string topic = "k" + std::to_string(zipf.sample(pub_rng));
      const double value = static_cast<double>(pub_rng.below(80));
      const std::string key =
          "p" + std::to_string(p) + "r" + std::to_string(r);
      const SimDuration when = duration::millis(5) * static_cast<SimDuration>(
                                   r * 6 + static_cast<int>(p) - 8);
      sched.after(when, [&router, p, topic, value, key] {
        Event e("reading");
        e.set("topic", topic);
        e.set("value", value);
        e.set("key", key);
        router.publish(p, e);
      });
    }
  }
  sched.run();

  for (const auto& [h, keys] : digest) result.deliveries += keys.size();
  for (auto& [h, keys] : digest) std::sort(keys.begin(), keys.end());
  for (std::size_t s = 0; s < router.shard_count(); ++s) {
    const pubsub::BrokerStats stats = router.shard(s).total_broker_stats();
    result.recovered_per_shard.push_back(stats.recovered_entries);
    result.recoveries += stats.recoveries;
  }
  return result;
}

TEST(ShardRouter, ShardCrashDuringZipfHotspotRecoversToOracle) {
  const ShardCrashResult oracle = run_shard_crash_scenario(/*crash=*/false, 1);
  ASSERT_GT(oracle.deliveries, 0u);
  ASSERT_EQ(oracle.recoveries, 0u);

  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const ShardCrashResult crash = run_shard_crash_scenario(/*crash=*/true, seed);
    // Bit-exact delivery digest despite losing the hot shard's interior
    // broker mid-load.
    EXPECT_EQ(crash.digest, oracle.digest) << "seed " << seed;
    EXPECT_GE(crash.recoveries, 1u) << "seed " << seed;
    // Only the crashed shard's brokers restored entries; sibling shards
    // never noticed.
    std::size_t shards_touched = 0;
    for (std::size_t s = 0; s < crash.recovered_per_shard.size(); ++s) {
      if (crash.recovered_per_shard[s] > 0) ++shards_touched;
    }
    EXPECT_EQ(shards_touched, 1u) << "seed " << seed;
    EXPECT_EQ(oracle.recovered_per_shard, std::vector<std::uint64_t>(3, 0u));
  }
}

}  // namespace
}  // namespace aa
