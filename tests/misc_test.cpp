// Coverage for smaller surfaces not exercised elsewhere: logging,
// scheduler introspection, network handler teardown, XML child removal,
// event describe, mobility unsubscribe, store-node fragments, broker
// neighbour removal, histogram values access.
#include <gtest/gtest.h>

#include <memory>

#include "common/log.hpp"
#include "pubsub/mobility.hpp"
#include "pubsub/siena_network.hpp"
#include "sim/metrics.hpp"
#include "sim/network.hpp"
#include "storage/store_node.hpp"
#include "xml/xml.hpp"

namespace aa {
namespace {

TEST(Log, LevelGatingAndOutput) {
  const LogLevel before = Logger::level();
  Logger::set_level(LogLevel::kWarn);
  EXPECT_FALSE(Logger::enabled(LogLevel::kDebug));
  EXPECT_TRUE(Logger::enabled(LogLevel::kError));
  AA_DEBUG("test") << "suppressed " << 1;
  AA_ERROR("test") << "emitted " << 2;  // visible on stderr; no assert
  Logger::set_level(before);
}

TEST(Scheduler, IntrospectionCounters) {
  sim::Scheduler s;
  EXPECT_FALSE(s.step());
  s.after(10, [] {});
  s.after(20, [] {});
  EXPECT_EQ(s.pending(), 2u);
  s.run();
  EXPECT_EQ(s.executed_events(), 2u);
  EXPECT_EQ(s.pending(), 0u);
}

TEST(Network, ClearHandlersSilencesHost) {
  sim::Scheduler sched;
  auto topo = std::make_shared<sim::UniformTopology>(4, 1000);
  sim::Network net(sched, topo);
  int got = 0;
  net.register_handler(1, "a", [&](const sim::Packet&) { ++got; });
  net.register_handler(1, "b", [&](const sim::Packet&) { ++got; });
  net.clear_handlers(1);
  net.send(0, 1, "a", 1, 8);
  net.send(0, 1, "b", 1, 8);
  sched.run();
  EXPECT_EQ(got, 0);
  EXPECT_EQ(net.stats().messages_dropped, 2u);
}

TEST(Xml, RemoveChildren) {
  auto doc = xml::parse("<r><a/><b/><a/><c/></r>");
  ASSERT_TRUE(doc.is_ok());
  xml::Element e = doc.value();
  EXPECT_EQ(e.remove_children("a"), 2u);
  EXPECT_EQ(e.remove_children("a"), 0u);
  EXPECT_EQ(e.child_elements().size(), 2u);
}

TEST(Event, DescribeListsAttributes) {
  event::Event e("t");
  e.set("x", 1).set("y", "z");
  const std::string d = e.describe();
  EXPECT_NE(d.find("x=1"), std::string::npos);
  EXPECT_NE(d.find("y=z"), std::string::npos);
  EXPECT_NE(d.find("type=t"), std::string::npos);
}

TEST(Mobility, UnsubscribeStopsRelay) {
  sim::Scheduler sched;
  auto topo = std::make_shared<sim::UniformTopology>(8, 1000);
  sim::Network net(sched, topo);
  pubsub::SienaNetwork bus(net, {0});
  pubsub::MobilityService mob(net, bus, 0);
  mob.register_mobile("m", 3);
  int got = 0;
  const auto id = mob.subscribe("m", event::Filter(), [&](const event::Event&) { ++got; });
  sched.run();
  mob.unsubscribe("m", id);
  sched.run();
  event::Event e("x");
  bus.publish(4, e);
  sched.run();
  EXPECT_EQ(got, 0);
  EXPECT_FALSE(mob.connected("ghost"));
  EXPECT_EQ(mob.buffered("ghost"), 0u);
}

TEST(StoreNode, FragmentLifecycle) {
  storage::StoreNode node(1024);
  const ObjectId id = Uid160::from_content("o");
  storage::Fragment f;
  f.index = 2;
  f.data = to_bytes("frag");
  node.store_fragment(id, f);
  ASSERT_NE(node.fragment(id), nullptr);
  EXPECT_EQ(node.fragment(id)->index, 2);
  EXPECT_EQ(node.fragment_ids().size(), 1u);
  EXPECT_TRUE(node.drop_fragment(id));
  EXPECT_FALSE(node.drop_fragment(id));
}

TEST(Broker, RemoveNeighbourStopsForwarding) {
  sim::Scheduler sched;
  auto topo = std::make_shared<sim::UniformTopology>(8, 1000);
  sim::Network net(sched, topo);
  pubsub::SienaNetwork ps(net, {0, 1});
  ASSERT_TRUE(ps.connect(0, 1).is_ok());
  ps.attach_client(4, 1);
  int got = 0;
  ps.subscribe(4, event::Filter(), [&](const event::Event&) { ++got; });
  sched.run();
  // Severing the link at broker 0 stops publications flowing to 1.
  ps.broker(0)->remove_neighbour(1);
  ps.attach_client(5, 0);
  ps.publish(5, event::Event("x"));
  sched.run();
  EXPECT_EQ(got, 0);
}

TEST(Histogram, ValuesAccessAndClear) {
  sim::Histogram h;
  h.record(3);
  h.record(1);
  EXPECT_EQ(h.values().size(), 2u);
  EXPECT_DOUBLE_EQ(h.sum(), 4.0);
  h.clear();
  EXPECT_EQ(h.count(), 0u);
}

TEST(Status, CodeNamesComplete) {
  EXPECT_STREQ(code_name(Code::kOk), "OK");
  EXPECT_STREQ(code_name(Code::kCorrupt), "CORRUPT");
  EXPECT_STREQ(code_name(Code::kPermissionDenied), "PERMISSION_DENIED");
  EXPECT_STREQ(code_name(Code::kExhausted), "EXHAUSTED");
  EXPECT_STREQ(code_name(Code::kAlreadyExists), "ALREADY_EXISTS");
}

}  // namespace
}  // namespace aa
