// Crash-durability suite: the DurableDisk I/O model, the ping-pong
// checkpoint format, the store journal's WAL replay, and a seeded
// torn-write fuzz loop.
//
// The fuzz loop is the load-bearing test: it crashes a journalled node
// mid-flush at a random point under every (workload, disk) seed pair
// and asserts the recovered state is *prefix-consistent* — exactly the
// state after some prefix of the mutation history, and that prefix
// contains at least every mutation whose disk op was durably acked.
// Torn tails, ghost writes and lost ops are all allowed to move the cut
// point; they are never allowed to produce a state that no prefix of
// the history ever had.
#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "sim/durable_disk.hpp"
#include "sim/network.hpp"
#include "sim/scheduler.hpp"
#include "sim/topology.hpp"
#include "storage/durability.hpp"
#include "storage/store_node.hpp"

namespace aa {
namespace {

using sim::CheckpointRead;
using sim::DiskParams;
using sim::DurableDisk;
using storage::Fragment;
using storage::StoreJournal;
using storage::StoreNode;
using storage::StoreTier;

struct DiskFixture {
  sim::Scheduler sched;
  std::shared_ptr<sim::UniformTopology> topo =
      std::make_shared<sim::UniformTopology>(4, 1000);
  sim::Network net{sched, topo};
};

Bytes blob(std::size_t n, std::uint8_t fill) { return Bytes(n, fill); }

// --- DurableDisk I/O model ---

TEST(DurableDisk, WriteBecomesDurableAfterFsync) {
  DiskFixture f;
  DurableDisk disk(f.net);
  bool durable = false;
  disk.write(0, "a", blob(1000, 1), [&](bool ok) { durable = ok; });
  EXPECT_EQ(disk.in_flight(0), 1u);
  EXPECT_FALSE(durable);  // async: nothing durable before the fsync
  f.sched.run();
  EXPECT_TRUE(durable);
  ASSERT_NE(disk.read(0, "a"), nullptr);
  EXPECT_EQ(*disk.read(0, "a"), blob(1000, 1));
  EXPECT_EQ(disk.in_flight(0), 0u);
  // Completion charged fsync + bytes/throughput of virtual time.
  EXPECT_GE(f.sched.now(), disk.params().fsync_latency);
  EXPECT_EQ(disk.stats().writes, 1u);
  EXPECT_EQ(disk.stats().bytes_written, 1000u);
}

TEST(DurableDisk, OpsOnOneHostCompleteInFifoOrder) {
  DiskFixture f;
  DurableDisk disk(f.net);
  std::vector<int> order;
  disk.write(0, "a", blob(10, 1), [&](bool) { order.push_back(1); });
  disk.write(0, "b", blob(10, 2), [&](bool) { order.push_back(2); });
  disk.append(0, "log", blob(10, 3), [&](bool) { order.push_back(3); });
  f.sched.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(DurableDisk, WriteToDownHostFailsImmediately) {
  DiskFixture f;
  DurableDisk disk(f.net);
  f.net.set_host_up(1, false);
  bool called = false, result = true;
  disk.write(1, "a", blob(10, 1), [&](bool ok) {
    called = true;
    result = ok;
  });
  f.sched.run();
  EXPECT_TRUE(called);
  EXPECT_FALSE(result);
  EXPECT_FALSE(disk.exists(1, "a"));
}

TEST(DurableDisk, CrashTearsHeadOpAndLosesTheQueue) {
  DiskFixture f;
  DiskParams p;
  p.torn_write_prob = 1.0;  // head op always lands a torn prefix
  p.ghost_write_prob = 0.0;
  DurableDisk disk(f.net, p);
  bool head_done = false, tail_done = false;
  const Bytes data = blob(4000, 7);
  disk.write(0, "a", data, [&](bool) { head_done = true; });
  disk.write(0, "b", blob(100, 8), [&](bool) { tail_done = true; });
  f.net.set_host_up(0, false);  // crash with both ops in flight
  f.sched.run();
  // No completion callback of a crashed op ever fires.
  EXPECT_FALSE(head_done);
  EXPECT_FALSE(tail_done);
  // Head: a non-empty *strict* prefix reached the platter (a complete
  // landing would be a ghost write, not a torn one).
  ASSERT_NE(disk.read(0, "a"), nullptr);
  const Bytes& torn = *disk.read(0, "a");
  ASSERT_FALSE(torn.empty());
  ASSERT_LT(torn.size(), data.size());
  EXPECT_TRUE(std::equal(torn.begin(), torn.end(), data.begin()));
  // Queued op behind the head vanished outright.
  EXPECT_FALSE(disk.exists(0, "b"));
  EXPECT_EQ(disk.stats().crashed_ops, 2u);
  EXPECT_EQ(disk.stats().torn_ops, 1u);
  EXPECT_EQ(disk.stats().lost_ops, 1u);
  // The file survives the host's downtime: it is still there after the
  // host rejoins as a new incarnation.
  f.net.set_host_up(0, true);
  EXPECT_TRUE(disk.exists(0, "a"));
}

TEST(DurableDisk, GhostWriteLandsFullyButUnacked) {
  DiskFixture f;
  DiskParams p;
  p.torn_write_prob = 0.0;
  p.ghost_write_prob = 1.0;
  DurableDisk disk(f.net, p);
  bool done = false;
  disk.write(0, "a", blob(500, 9), [&](bool) { done = true; });
  f.net.set_host_up(0, false);
  f.sched.run();
  EXPECT_FALSE(done);  // the ack raced the crash and lost
  ASSERT_NE(disk.read(0, "a"), nullptr);
  EXPECT_EQ(*disk.read(0, "a"), blob(500, 9));  // ...but the data landed
  EXPECT_EQ(disk.stats().ghost_ops, 1u);
}

TEST(DurableDisk, LostWriteLeavesNoTrace) {
  DiskFixture f;
  DiskParams p;
  p.torn_write_prob = 0.0;
  p.ghost_write_prob = 0.0;  // remainder: always lost
  DurableDisk disk(f.net, p);
  disk.write(0, "a", blob(500, 9));
  f.net.set_host_up(0, false);
  f.sched.run();
  EXPECT_FALSE(disk.exists(0, "a"));
  EXPECT_EQ(disk.stats().lost_ops, 1u);
}

TEST(DurableDisk, CrashTearsAppendTailOnly) {
  DiskFixture f;
  DiskParams p;
  p.torn_write_prob = 1.0;
  p.ghost_write_prob = 0.0;
  DurableDisk disk(f.net, p);
  disk.append(0, "log", blob(100, 1));
  f.sched.run();  // first record durable
  disk.append(0, "log", blob(100, 2));
  f.net.set_host_up(0, false);  // crash mid-append
  f.sched.run();
  ASSERT_NE(disk.read(0, "log"), nullptr);
  const Bytes& log = *disk.read(0, "log");
  // The durable first record is intact; the second is a torn tail —
  // strictly shorter than the full record.
  ASSERT_GT(log.size(), 100u);
  ASSERT_LT(log.size(), 200u);
  EXPECT_TRUE(std::all_of(log.begin(), log.begin() + 100,
                          [](std::uint8_t b) { return b == 1; }));
  EXPECT_TRUE(std::all_of(log.begin() + 100, log.end(),
                          [](std::uint8_t b) { return b == 2; }));
}

TEST(DurableDisk, OneByteOpCannotTearItGhostsInstead) {
  // A torn write is a strict prefix; a 1-byte op has none, so the torn
  // draw reclassifies as a ghost (landed fully, never acked).
  DiskFixture f;
  DiskParams p;
  p.torn_write_prob = 1.0;
  p.ghost_write_prob = 0.0;
  DurableDisk disk(f.net, p);
  disk.write(0, "a", blob(1, 5));
  f.net.set_host_up(0, false);
  f.sched.run();
  EXPECT_EQ(disk.stats().torn_ops, 0u);
  EXPECT_EQ(disk.stats().ghost_ops, 1u);
  ASSERT_NE(disk.read(0, "a"), nullptr);
  EXPECT_EQ(*disk.read(0, "a"), blob(1, 5));
}

TEST(DurableDisk, CrashOutcomesAreDeterministicPerSeed) {
  auto run = [](std::uint64_t seed) {
    DiskFixture f;
    DiskParams p;
    p.seed = seed;
    DurableDisk disk(f.net, p);
    for (int i = 0; i < 6; ++i) {
      disk.append(0, "log", blob(64, static_cast<std::uint8_t>(i)));
    }
    f.sched.run_until(1200);  // some ops durable, some in flight
    f.net.set_host_up(0, false);
    f.sched.run();
    const Bytes* log = disk.read(0, "log");
    return log == nullptr ? Bytes{} : *log;
  };
  EXPECT_EQ(run(42), run(42));
}

// --- Ping-pong checkpoints ---

TEST(Checkpoint, WriteReadRoundTrip) {
  DiskFixture f;
  DurableDisk disk(f.net);
  sim::checkpoint_write(disk, 0, "ckpt", 1, blob(300, 5));
  f.sched.run();
  const CheckpointRead got = sim::checkpoint_read(disk, 0, "ckpt");
  EXPECT_TRUE(got.ok);
  EXPECT_EQ(got.seq, 1u);
  EXPECT_EQ(got.payload, blob(300, 5));
  EXPECT_EQ(got.corrupt_files, 0u);
}

TEST(Checkpoint, HighestValidSequenceWins) {
  DiskFixture f;
  DurableDisk disk(f.net);
  sim::checkpoint_write(disk, 0, "ckpt", 1, blob(10, 1));
  sim::checkpoint_write(disk, 0, "ckpt", 2, blob(10, 2));
  f.sched.run();
  const CheckpointRead got = sim::checkpoint_read(disk, 0, "ckpt");
  EXPECT_TRUE(got.ok);
  EXPECT_EQ(got.seq, 2u);
  EXPECT_EQ(got.payload, blob(10, 2));
}

TEST(Checkpoint, TornOverwriteKeepsPreviousCheckpoint) {
  // The reason the format ping-pongs at all: checkpoint 3 tears
  // mid-flush, and recovery must still find checkpoint 2 intact in the
  // other half of the pair.
  DiskFixture f;
  DiskParams p;
  p.torn_write_prob = 1.0;
  p.ghost_write_prob = 0.0;
  DurableDisk disk(f.net, p);
  sim::checkpoint_write(disk, 0, "ckpt", 2, blob(200, 2));
  f.sched.run();
  sim::checkpoint_write(disk, 0, "ckpt", 3, blob(200, 3));
  f.net.set_host_up(0, false);  // crash mid-overwrite
  f.sched.run();
  const CheckpointRead got = sim::checkpoint_read(disk, 0, "ckpt");
  EXPECT_TRUE(got.ok);
  EXPECT_EQ(got.seq, 2u);
  EXPECT_EQ(got.payload, blob(200, 2));
  EXPECT_EQ(got.corrupt_files, 1u);  // the torn half failed validation
}

TEST(Checkpoint, MissingFilesReportNotOk) {
  DiskFixture f;
  DurableDisk disk(f.net);
  const CheckpointRead got = sim::checkpoint_read(disk, 0, "ckpt");
  EXPECT_FALSE(got.ok);
}

// --- StoreJournal: tiers, WAL replay, recovery ---

ObjectId oid(int i) { return Uid160::from_name("obj-" + std::to_string(i)); }

std::map<ObjectId, Bytes> replica_map(const StoreNode& node) {
  std::map<ObjectId, Bytes> out;
  for (const ObjectId& id : node.replica_ids()) out[id] = *node.replica(id);
  return out;
}

TEST(StoreJournal, PersistentTierRecoversCheckpointedState) {
  DiskFixture f;
  DurableDisk disk(f.net);
  StoreNode node(1 << 20);
  StoreJournal journal(disk, 0, StoreTier::kPersistent, 64);
  journal.bind(&node);
  node.set_journal(&journal);
  node.store_replica(oid(1), blob(100, 1));
  node.store_replica(oid(2), blob(100, 2));
  node.drop_replica(oid(1));
  f.sched.run();
  const auto expected = replica_map(node);

  const auto result = journal.recover(node);
  EXPECT_TRUE(result.checkpoint_ok);
  EXPECT_EQ(result.records_replayed, 0u);  // checkpoint-on-write: no WAL
  EXPECT_EQ(replica_map(node), expected);
  EXPECT_GT(result.modeled_latency, 0);
  EXPECT_GT(journal.stats().write_amplification(), 1.0);
}

TEST(StoreJournal, LoggedTierReplaysWalWithoutCheckpoint) {
  DiskFixture f;
  DurableDisk disk(f.net);
  StoreNode node(1 << 20);
  StoreJournal journal(disk, 0, StoreTier::kLogged, 1000);  // never checkpoints
  journal.bind(&node);
  node.set_journal(&journal);
  node.store_replica(oid(1), blob(100, 1));
  node.store_replica(oid(2), blob(100, 2));
  node.drop_replica(oid(1));
  Fragment frag;
  frag.index = 3;
  frag.data = blob(50, 9);
  node.store_fragment(oid(4), std::move(frag));
  f.sched.run();
  const auto expected = replica_map(node);

  const auto result = journal.recover(node);
  EXPECT_FALSE(result.checkpoint_ok);
  EXPECT_EQ(result.records_replayed, 4u);
  EXPECT_EQ(result.torn_discarded, 0u);
  EXPECT_EQ(replica_map(node), expected);
  const Fragment* rf = node.fragment(oid(4));
  ASSERT_NE(rf, nullptr);
  EXPECT_EQ(rf->index, 3);
  EXPECT_EQ(rf->data, blob(50, 9));
}

TEST(StoreJournal, ReplayTruncatesTornTailRecord) {
  DiskFixture f;
  DiskParams p;
  p.torn_write_prob = 1.0;
  p.ghost_write_prob = 0.0;
  DurableDisk disk(f.net, p);
  StoreNode node(1 << 20);
  StoreJournal journal(disk, 0, StoreTier::kLogged, 1000);
  journal.bind(&node);
  node.set_journal(&journal);
  node.store_replica(oid(1), blob(400, 1));
  node.store_replica(oid(2), blob(400, 2));
  f.sched.run();  // both records durable
  node.store_replica(oid(3), blob(400, 3));
  f.net.set_host_up(0, false);  // crash mid-append: record 3 tears
  f.sched.run();
  f.net.set_host_up(0, true);

  const auto result = journal.recover(node);
  EXPECT_EQ(result.records_replayed, 2u);
  EXPECT_EQ(result.torn_discarded, 1u);
  EXPECT_NE(node.replica(oid(1)), nullptr);
  EXPECT_NE(node.replica(oid(2)), nullptr);
  EXPECT_EQ(node.replica(oid(3)), nullptr);  // torn tail truncated
}

TEST(StoreJournal, CheckpointRetiresCoveredWalEpochs) {
  DiskFixture f;
  DurableDisk disk(f.net);
  StoreNode node(1 << 20);
  StoreJournal journal(disk, 0, StoreTier::kLogged, 3);  // checkpoint every 3
  journal.bind(&node);
  node.set_journal(&journal);
  for (int i = 0; i < 7; ++i) node.store_replica(oid(i), blob(80, static_cast<std::uint8_t>(i)));
  f.sched.run();
  const auto expected = replica_map(node);
  // Epochs covered by the durable checkpoints were deleted.
  std::size_t wal_files = 0;
  for (const std::string& file : disk.files(0)) {
    if (file.starts_with("store.wal.")) ++wal_files;
  }
  EXPECT_LE(wal_files, 1u);

  const auto result = journal.recover(node);
  EXPECT_TRUE(result.checkpoint_ok);
  EXPECT_EQ(replica_map(node), expected);
  // Journalling continues after recovery: a fresh mutation reaches disk
  // and survives a second recovery.
  node.store_replica(oid(100), blob(80, 42));
  f.sched.run();
  journal.recover(node);
  EXPECT_NE(node.replica(oid(100)), nullptr);
}

// Mints a standalone WAL segment on a scratch host: runs `mutate`
// against a throwaway journal whose epoch was advanced to 1 so the
// records land in a fresh segment, and returns that segment's bytes.
Bytes mint_wal_segment(DiskFixture& f, DurableDisk& disk, sim::HostId scratch_host,
                       const std::function<void(StoreNode&)>& mutate) {
  StoreNode scratch(1 << 20);
  StoreJournal mint(disk, scratch_host, StoreTier::kLogged, 1000);
  mint.bind(&scratch);
  scratch.set_journal(&mint);
  mint.checkpoint_now();  // epoch -> 1: the segment under mint is wal.1
  f.sched.run();
  mutate(scratch);
  f.sched.run();
  const Bytes* segment = disk.read(scratch_host, "store.wal.1");
  return segment != nullptr ? *segment : Bytes{};
}

TEST(StoreJournal, RecoveryResumesPastStalePreCrashWalEpochs) {
  // A checkpoint initiated-but-not-durable before a crash leaves a WAL
  // segment whose epoch is above the recovered checkpoint seq.
  // Recovery must resume sequence numbering past it: if it reused those
  // numbers, the stale segment would outlive the next checkpoint's
  // cleanup and a *second* recovery would replay the pre-crash records
  // on top of newer durable state.
  DiskFixture f;
  DurableDisk disk(f.net);
  const Bytes drop_x = mint_wal_segment(f, disk, 0, [](StoreNode& n) {
    n.store_replica(oid(1), blob(50, 1));  // drop of a missing id is a no-op
    n.drop_replica(oid(1));
  });
  ASSERT_FALSE(drop_x.empty());

  // Host 1's crashed state: checkpoint seq 1 durable with X present,
  // plus the epoch-2 segment of a checkpoint seq 2 that never landed,
  // holding `drop X`.
  StoreNode node(1 << 20);
  StoreJournal journal(disk, 1, StoreTier::kLogged, 1000);
  journal.bind(&node);
  node.set_journal(&journal);
  node.store_replica(oid(1), blob(50, 1));
  journal.checkpoint_now();
  f.sched.run();
  disk.write(1, "store.wal.2", drop_x);
  f.sched.run();

  // First recovery replays the stale segment once: X is dropped.
  journal.recover(node);
  EXPECT_EQ(node.replica(oid(1)), nullptr);

  // Post-recovery life re-puts X and checkpoints it durably...
  node.store_replica(oid(1), blob(50, 9));
  journal.checkpoint_now();
  f.sched.run();

  // ...so a second recovery must never replay the stale `drop X` over
  // the newer checkpoint.
  journal.recover(node);
  ASSERT_NE(node.replica(oid(1)), nullptr);
  EXPECT_EQ(*node.replica(oid(1)), blob(50, 9));
}

TEST(StoreJournal, TornTailRemovesUntrustedLaterEpochs) {
  // Epochs after a torn tail are skipped by replay; they must also be
  // removed from disk, or the next recovery (tail truncated by this
  // one) would replay records this recovery discarded.
  DiskFixture f;
  DurableDisk disk(f.net);
  const Bytes put_x = mint_wal_segment(
      f, disk, 0, [](StoreNode& n) { n.store_replica(oid(1), blob(60, 1)); });
  const Bytes put_y = mint_wal_segment(
      f, disk, 3, [](StoreNode& n) { n.store_replica(oid(2), blob(60, 2)); });
  ASSERT_FALSE(put_x.empty());
  ASSERT_FALSE(put_y.empty());

  disk.write(2, "store.wal.0", Bytes(put_x.begin(), put_x.end() - 1));  // torn
  disk.write(2, "store.wal.1", put_y);
  f.sched.run();

  StoreNode node(1 << 20);
  StoreJournal journal(disk, 2, StoreTier::kLogged, 1000);
  journal.bind(&node);
  node.set_journal(&journal);
  const auto result = journal.recover(node);
  EXPECT_EQ(result.records_replayed, 0u);
  EXPECT_EQ(result.torn_discarded, 1u);
  EXPECT_EQ(node.replica(oid(2)), nullptr);
  EXPECT_FALSE(disk.exists(2, "store.wal.1"));

  // Idempotent: a second recovery cannot resurrect the discarded put.
  journal.recover(node);
  EXPECT_EQ(node.replica(oid(2)), nullptr);
}

TEST(StoreJournal, LoggedAmplifiesLessThanPersistent) {
  // The taxonomy's reason to exist: same workload, an order-of-magnitude
  // gap in physical bytes per logical byte.
  auto amplification = [](StoreTier tier) {
    DiskFixture f;
    DurableDisk disk(f.net);
    StoreNode node(1 << 20);
    StoreJournal journal(disk, 0, tier, 64);
    journal.bind(&node);
    node.set_journal(&journal);
    for (int i = 0; i < 40; ++i) {
      node.store_replica(oid(i), blob(200, static_cast<std::uint8_t>(i)));
    }
    f.sched.run();
    return journal.stats().write_amplification();
  };
  const double logged = amplification(StoreTier::kLogged);
  const double persistent = amplification(StoreTier::kPersistent);
  EXPECT_GT(logged, 0.0);
  EXPECT_GT(persistent, 5.0 * logged);
}

// --- Seeded torn-write fuzz loop ---

// One fuzz round: N mutations spread over virtual time, a crash at a
// random instant with ops in flight, then recovery.  Returns via
// gtest assertions; `workload_seed` drives the mutation mix and crash
// time, `disk_seed` drives the torn/ghost/lost draws.
void fuzz_round(StoreTier tier, std::uint64_t workload_seed, std::uint64_t disk_seed) {
  SCOPED_TRACE("tier=" + std::string(storage::tier_name(tier)) +
               " workload_seed=" + std::to_string(workload_seed) +
               " disk_seed=" + std::to_string(disk_seed));
  DiskFixture f;
  DiskParams dp;
  dp.seed = disk_seed;
  DurableDisk disk(f.net, dp);
  StoreNode node(1 << 20);
  StoreJournal journal(disk, 0, tier, 5);  // checkpoints interleave with WAL
  journal.bind(&node);
  node.set_journal(&journal);

  Rng rng(workload_seed);
  // Reference history: snapshots[i] is the expected replica map after
  // the first i mutations.
  std::vector<std::map<ObjectId, Bytes>> snapshots{{}};
  constexpr int kMutations = 30;
  std::vector<ObjectId> live;
  for (int i = 0; i < kMutations; ++i) {
    auto next = snapshots.back();
    const bool drop = !live.empty() && rng.chance(0.25);
    if (drop) {
      const ObjectId victim = live[rng.below(live.size())];
      next.erase(victim);
      live.erase(std::find(live.begin(), live.end(), victim));
      f.sched.after(200 * (i + 1), [&node, victim] { node.drop_replica(victim); });
    } else {
      const ObjectId id = oid(static_cast<int>(workload_seed * 1000) + i);
      const Bytes data = blob(50 + rng.below(300), static_cast<std::uint8_t>(i));
      next[id] = data;
      live.push_back(id);
      f.sched.after(200 * (i + 1), [&node, id, data] { node.store_replica(id, data); });
    }
    snapshots.push_back(std::move(next));
  }
  // Crash somewhere inside the mutation window: the 200 us issue rate
  // against the ~500 us fsync keeps the disk queue non-empty.
  const SimTime crash_at = 500 + static_cast<SimTime>(rng.below(200 * kMutations));
  f.sched.after(crash_at, [&f] { f.net.set_host_up(0, false); });
  f.sched.run();
  f.net.set_host_up(0, true);

  // Durable lower bound: per-host FIFO means N durable ops imply the
  // first N mutations' journal ops all completed.
  const std::uint64_t durable_ops =
      tier == StoreTier::kPersistent ? disk.stats().writes : disk.stats().appends;

  journal.recover(node);
  const auto recovered = replica_map(node);
  bool prefix_found = false;
  for (std::size_t k = durable_ops; k < snapshots.size(); ++k) {
    if (snapshots[k] == recovered) {
      prefix_found = true;
      break;
    }
  }
  EXPECT_TRUE(prefix_found)
      << "recovered state matches no prefix >= the " << durable_ops
      << " durably acked mutations (" << recovered.size() << " replicas recovered)";
}

TEST(DurabilityFuzz, TornWriteRecoveryIsPrefixConsistent) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    fuzz_round(StoreTier::kLogged, seed, seed * 31);
    fuzz_round(StoreTier::kPersistent, seed, seed * 31);
  }
}

TEST(DurabilityFuzz, RepeatedCrashRecoverCyclesStayConsistent) {
  // Crash the same node three times in one life, recovering between
  // crashes: recovery must be idempotent over its own output (replayed
  // mutations are not re-journalled, epochs resume correctly).
  DiskFixture f;
  DiskParams dp;
  dp.seed = 99;
  DurableDisk disk(f.net, dp);
  StoreNode node(1 << 20);
  StoreJournal journal(disk, 0, StoreTier::kLogged, 4);
  journal.bind(&node);
  node.set_journal(&journal);

  std::map<ObjectId, Bytes> durable_floor;  // mutations known acked
  int next_obj = 0;
  for (int cycle = 0; cycle < 3; ++cycle) {
    // A batch that fully settles (durable), then a batch in flight.
    for (int i = 0; i < 4; ++i) {
      const ObjectId id = oid(next_obj++);
      node.store_replica(id, blob(120, static_cast<std::uint8_t>(cycle)));
      durable_floor[id] = blob(120, static_cast<std::uint8_t>(cycle));
    }
    f.sched.run();
    for (int i = 0; i < 3; ++i) {
      node.store_replica(oid(next_obj++), blob(120, 200));
    }
    f.net.set_host_up(0, false);  // crash with the second batch in flight
    f.sched.run();
    f.net.set_host_up(0, true);
    journal.recover(node);
    const auto recovered = replica_map(node);
    // Everything acked before the crash is present with correct bytes.
    for (const auto& [id, data] : durable_floor) {
      auto it = recovered.find(id);
      ASSERT_NE(it, recovered.end()) << "cycle " << cycle;
      EXPECT_EQ(it->second, data) << "cycle " << cycle;
    }
    // The in-flight batch may be partially recovered; fold whatever
    // survived into the floor for the next cycle (it is durable now —
    // recovery itself re-checkpoints nothing, but the journal resumes
    // from the recovered horizon, so surviving state persists).
    durable_floor = recovered;
  }
  EXPECT_GE(journal.stats().recoveries, 3u);
}

}  // namespace
}  // namespace aa
