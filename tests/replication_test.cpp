// Tests for knowledge-base replication over the event bus (§1.2: "the
// knowledge base must be delivered to the locations at which the
// matching computation occurs").
#include <gtest/gtest.h>

#include <memory>

#include "event/filter_parser.hpp"
#include "match/replicated_knowledge.hpp"
#include "pubsub/siena_network.hpp"

namespace aa::match {
namespace {

Fact preference(const std::string& user, double min_celsius) {
  Fact f;
  f.set("kind", "preference").set("user", user).set("min_celsius", min_celsius);
  return f;
}

event::Filter filt(const std::string& text) {
  return event::parse_filter(text).value_or(event::Filter());
}

struct Fixture {
  sim::Scheduler sched;
  std::shared_ptr<sim::Topology> topo;
  sim::Network net;
  pubsub::SienaNetwork bus;
  ReplicatedKnowledge rk;

  Fixture()
      : topo(std::make_shared<sim::UniformTopology>(8, duration::millis(5))),
        net(sched, topo),
        bus(net, {0, 1}),
        rk(bus, /*authority=*/0) {
    EXPECT_TRUE(bus.connect(0, 1).is_ok());
  }
};

TEST(ReplicatedKnowledge, StateTransferToLateReplica) {
  Fixture f;
  f.rk.add(preference("bob", 18.0));
  f.rk.add(preference("anna", 12.0));
  // The replica is created after the writes: it must receive a copy.
  KnowledgeBase& replica = f.rk.replica(5);
  EXPECT_EQ(replica.size(), 2u);
  EXPECT_EQ(replica.query(filt("user = bob")).size(), 1u);
  EXPECT_EQ(f.rk.stats().state_transfers, 1u);
}

TEST(ReplicatedKnowledge, UpdatesPropagateOverTheBus) {
  Fixture f;
  KnowledgeBase& replica = f.rk.replica(5);
  f.sched.run();  // let the replica's subscription install
  EXPECT_EQ(replica.size(), 0u);

  f.rk.add(preference("bob", 18.0));
  f.sched.run();  // propagation delay
  EXPECT_EQ(replica.size(), 1u);
  EXPECT_EQ(replica.query(filt("user = bob")).size(), 1u);
}

TEST(ReplicatedKnowledge, RemovePropagatesWithCorrectId) {
  Fixture f;
  const FactId bob = f.rk.add(preference("bob", 18.0));
  f.rk.add(preference("anna", 12.0));
  KnowledgeBase& replica = f.rk.replica(3);
  f.sched.run();
  ASSERT_EQ(replica.size(), 2u);

  EXPECT_TRUE(f.rk.remove(bob));
  f.sched.run();
  EXPECT_EQ(replica.size(), 1u);
  EXPECT_TRUE(replica.query(filt("user = bob")).empty());
  EXPECT_EQ(replica.query(filt("user = anna")).size(), 1u);
}

TEST(ReplicatedKnowledge, UpdateUpserts) {
  Fixture f;
  const FactId id = f.rk.add(preference("bob", 18.0));
  KnowledgeBase& replica = f.rk.replica(3);
  f.sched.run();
  EXPECT_TRUE(f.rk.update(id, preference("bob", 25.0)));
  f.sched.run();
  const auto facts = replica.query(filt("user = bob"));
  ASSERT_EQ(facts.size(), 1u);
  EXPECT_DOUBLE_EQ(facts[0]->get_real("min_celsius").value(), 25.0);
}

TEST(ReplicatedKnowledge, MultipleReplicasConverge) {
  Fixture f;
  std::vector<KnowledgeBase*> replicas;
  for (sim::HostId h = 2; h < 7; ++h) replicas.push_back(&f.rk.replica(h));
  f.sched.run();
  for (int i = 0; i < 10; ++i) f.rk.add(preference("user" + std::to_string(i), i));
  const FactId removed = f.rk.add(preference("victim", 0));
  f.rk.remove(removed);
  f.sched.run();
  for (KnowledgeBase* r : replicas) {
    EXPECT_EQ(r->size(), 10u);  // 10 users; the victim was removed
  }
}

TEST(ReplicatedKnowledge, RemoveOfUnknownIdIsFalse) {
  Fixture f;
  EXPECT_FALSE(f.rk.remove(999));
  EXPECT_FALSE(f.rk.update(999, preference("x", 1)));
}

}  // namespace
}  // namespace aa::match
