// Unit + property tests for the XML document model, parser, paths and
// type projection.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "xml/path.hpp"
#include "xml/projection.hpp"
#include "xml/xml.hpp"

namespace aa::xml {
namespace {

// --- Parse basics ---

TEST(XmlParse, SimpleElement) {
  auto r = parse("<a/>");
  ASSERT_TRUE(r.is_ok()) << r.status().to_string();
  EXPECT_EQ(r.value().name(), "a");
}

TEST(XmlParse, AttributesAndText) {
  auto r = parse(R"(<user name="bob" age="30">hello</user>)");
  ASSERT_TRUE(r.is_ok());
  const Element& e = r.value();
  EXPECT_EQ(e.attribute("name").value(), "bob");
  EXPECT_EQ(e.attribute("age").value(), "30");
  EXPECT_EQ(e.text(), "hello");
  EXPECT_FALSE(e.attribute("missing").has_value());
}

TEST(XmlParse, NestedChildren) {
  auto r = parse("<a><b><c>deep</c></b><b>two</b></a>");
  ASSERT_TRUE(r.is_ok());
  const Element& a = r.value();
  EXPECT_EQ(a.children_named("b").size(), 2u);
  EXPECT_EQ(a.child("b")->child("c")->text(), "deep");
}

TEST(XmlParse, DeclarationAndComments) {
  auto r = parse("<?xml version=\"1.0\"?><!-- c --><root><!-- inner -->ok</root>");
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value().text(), "ok");
}

TEST(XmlParse, Entities) {
  auto r = parse("<e a=\"&lt;&amp;&gt;\">&quot;x&apos; &#65;</e>");
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value().attribute("a").value(), "<&>");
  EXPECT_EQ(r.value().text(), "\"x' A");
}

TEST(XmlParse, SingleQuotedAttributes) {
  auto r = parse("<e a='v'/>");
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value().attribute("a").value(), "v");
}

// --- Parse errors ---

TEST(XmlParse, RejectsMismatchedTags) {
  EXPECT_FALSE(parse("<a></b>").is_ok());
}

TEST(XmlParse, RejectsUnterminated) {
  EXPECT_FALSE(parse("<a><b></b>").is_ok());
  EXPECT_FALSE(parse("<a").is_ok());
}

TEST(XmlParse, RejectsTrailingContent) {
  EXPECT_FALSE(parse("<a/><b/>").is_ok());
}

TEST(XmlParse, RejectsBadAttributes) {
  EXPECT_FALSE(parse("<a x=y/>").is_ok());
  EXPECT_FALSE(parse("<a x=\"unterminated/>").is_ok());
}

TEST(XmlParse, RejectsUnknownEntity) {
  EXPECT_FALSE(parse("<a>&bogus;</a>").is_ok());
}

// --- Writer / round-trip ---

TEST(XmlWrite, EscapesSpecials) {
  Element e("t");
  e.set_attribute("a", "<\"&'>");
  e.add_text("x < y & z");
  const std::string s = to_string(e);
  auto back = parse(s);
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value().attribute("a").value(), "<\"&'>");
  EXPECT_EQ(back.value().text(), "x < y & z");
}

Element random_element(Rng& rng, int depth) {
  Element e("el" + std::to_string(rng.below(5)));
  const int attrs = static_cast<int>(rng.below(3));
  for (int i = 0; i < attrs; ++i) {
    e.set_attribute("a" + std::to_string(i), "v<&>" + std::to_string(rng.below(100)));
  }
  if (depth > 0) {
    const int kids = static_cast<int>(rng.below(4));
    for (int i = 0; i < kids; ++i) {
      if (rng.chance(0.3)) {
        e.add_text("text " + std::to_string(rng.below(100)));
      } else {
        e.add_child(random_element(rng, depth - 1));
      }
    }
  } else if (rng.chance(0.5)) {
    e.add_text("leaf");
  }
  return e;
}

class XmlRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(XmlRoundTrip, ParsePrintIdentity) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const Element original = random_element(rng, 4);
  for (bool pretty : {false, true}) {
    WriteOptions opt;
    opt.pretty = pretty;
    auto r = parse(to_string(original, opt));
    ASSERT_TRUE(r.is_ok()) << r.status().to_string();
    EXPECT_TRUE(r.value() == original) << "pretty=" << pretty;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomDocuments, XmlRoundTrip, ::testing::Range(0, 25));

// --- Path queries ---

const char* kDoc = R"(
<menu place="janettas">
  <item kind="icecream"><flavour>vanilla</flavour><price>2.5</price></item>
  <item kind="icecream"><flavour>mint</flavour><price>2.8</price></item>
  <item kind="coffee"><price>2.0</price></item>
  <hours open="9.00" close="17.00"/>
</menu>)";

TEST(XmlPath, TextSelection) {
  auto doc = parse(kDoc);
  ASSERT_TRUE(doc.is_ok());
  EXPECT_EQ(eval_path(doc.value(), "menu/item/flavour").value(), "vanilla");
}

TEST(XmlPath, AttributeSelection) {
  auto doc = parse(kDoc);
  EXPECT_EQ(eval_path(doc.value(), "menu/hours/@close").value(), "17.00");
  EXPECT_EQ(eval_path(doc.value(), "menu/@place").value(), "janettas");
}

TEST(XmlPath, PredicateSelection) {
  auto doc = parse(kDoc);
  EXPECT_EQ(eval_path(doc.value(), "menu/item[kind=coffee]/price").value(), "2.0");
}

TEST(XmlPath, WildcardStep) {
  auto doc = parse(kDoc);
  auto path = Path::compile("menu/*/price");
  ASSERT_TRUE(path.is_ok());
  EXPECT_EQ(path.value().find_all(doc.value()).size(), 3u);
}

TEST(XmlPath, NoMatchReturnsNullopt) {
  auto doc = parse(kDoc);
  EXPECT_FALSE(eval_path(doc.value(), "menu/nothing/here").has_value());
  EXPECT_FALSE(eval_path(doc.value(), "wrongroot/item").has_value());
}

TEST(XmlPath, CompileErrors) {
  EXPECT_FALSE(Path::compile("").is_ok());
  EXPECT_FALSE(Path::compile("a/@x/b").is_ok());
  EXPECT_FALSE(Path::compile("a/[x=y]").is_ok());
  EXPECT_FALSE(Path::compile("a/b[pred]").is_ok());
}

// --- Type projection ---

TEST(Projection, PrimitiveRecordFromAttributesAndElements) {
  auto doc = parse(R"(<loc user="bob"><lat>56.34</lat><lon>-2.79</lon><floor>2</floor></loc>)");
  ASSERT_TRUE(doc.is_ok());
  const ProjType t = ProjType::record({
      ProjType::field("user", ProjType::string()),
      ProjType::field("lat", ProjType::real()),
      ProjType::field("lon", ProjType::real()),
      ProjType::field("floor", ProjType::integer()),
  });
  auto v = project(doc.value(), t);
  ASSERT_TRUE(v.is_ok()) << v.status().to_string();
  EXPECT_EQ(v.value().str("user"), "bob");
  EXPECT_DOUBLE_EQ(v.value().real("lat"), 56.34);
  EXPECT_EQ(v.value().integer("floor"), 2);
}

TEST(Projection, IgnoresUnmentionedContent) {
  // The "partial specification" property: unknown islands are skipped.
  auto doc = parse(
      "<ev><known>1</known><junk a=\"b\"><deep/></junk><extra>stuff</extra></ev>");
  const ProjType t = ProjType::record({ProjType::field("known", ProjType::integer())});
  auto v = project(doc.value(), t);
  ASSERT_TRUE(v.is_ok());
  EXPECT_EQ(v.value().integer("known"), 1);
}

TEST(Projection, RequiredFieldMissingFails) {
  auto doc = parse("<ev><a>1</a></ev>");
  const ProjType t = ProjType::record({ProjType::field("b", ProjType::integer())});
  auto v = project(doc.value(), t);
  EXPECT_FALSE(v.is_ok());
  EXPECT_EQ(v.status().code(), Code::kNotFound);
}

TEST(Projection, OptionalFieldMissingOk) {
  auto doc = parse("<ev><a>1</a></ev>");
  const ProjType t = ProjType::record({
      ProjType::field("a", ProjType::integer()),
      ProjType::field("b", ProjType::integer(), /*required=*/false),
  });
  auto v = project(doc.value(), t);
  ASSERT_TRUE(v.is_ok());
  EXPECT_TRUE(v.value().has_field("a"));
  EXPECT_FALSE(v.value().has_field("b"));
}

TEST(Projection, TypeMismatchFails) {
  auto doc = parse("<ev><n>abc</n></ev>");
  const ProjType t = ProjType::record({ProjType::field("n", ProjType::integer())});
  auto v = project(doc.value(), t);
  EXPECT_FALSE(v.is_ok());
  EXPECT_EQ(v.status().code(), Code::kInvalidArgument);
}

TEST(Projection, NestedRecords) {
  auto doc = parse("<ev><pos><lat>1.0</lat><lon>2.0</lon></pos><who>anna</who></ev>");
  const ProjType t = ProjType::record({
      ProjType::field("pos", ProjType::record({
                                 ProjType::field("lat", ProjType::real()),
                                 ProjType::field("lon", ProjType::real()),
                             })),
      ProjType::field("who", ProjType::string()),
  });
  auto v = project(doc.value(), t);
  ASSERT_TRUE(v.is_ok());
  EXPECT_DOUBLE_EQ(v.value().field("pos").real("lat"), 1.0);
}

TEST(Projection, ListCollectsNamedChildren) {
  auto doc = parse(
      "<menu><item><price>2.5</price></item><item><price>3.0</price></item><other/></menu>");
  const ProjType t = ProjType::record({ProjType::field(
      "menu_items",
      ProjType::list("item", ProjType::record({ProjType::field("price", ProjType::real())})),
      /*required=*/false)});
  // Lists are matched against the element itself, so project the list
  // type directly onto the parsed root.
  const ProjType items =
      ProjType::list("item", ProjType::record({ProjType::field("price", ProjType::real())}), 2);
  auto v = project(doc.value(), items);
  ASSERT_TRUE(v.is_ok());
  ASSERT_EQ(v.value().list().size(), 2u);
  EXPECT_DOUBLE_EQ(v.value().list()[1].real("price"), 3.0);
}

TEST(Projection, ListMinItemsEnforced) {
  auto doc = parse("<menu><item/></menu>");
  const ProjType t = ProjType::list("item", ProjType::string(), 2);
  EXPECT_FALSE(project(doc.value(), t).is_ok());
}

TEST(Projection, BooleanForms) {
  auto doc = parse("<e><a>true</a><b>0</b><c>yes</c></e>");
  const ProjType t = ProjType::record({
      ProjType::field("a", ProjType::boolean()),
      ProjType::field("b", ProjType::boolean()),
      ProjType::field("c", ProjType::boolean()),
  });
  auto v = project(doc.value(), t);
  ASSERT_TRUE(v.is_ok());
  EXPECT_TRUE(v.value().boolean("a"));
  EXPECT_FALSE(v.value().boolean("b"));
  EXPECT_TRUE(v.value().boolean("c"));
}

}  // namespace
}  // namespace aa::xml
