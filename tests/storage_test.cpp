// Tests for the storage architecture: GF(256)/Reed–Solomon erasure
// coding (round-trip under random loss, property-tested), the per-node
// store + LRU promiscuous cache, and the DHT-backed replicated object
// store (put/get, promiscuous cache hits, erasure reconstruction,
// self-healing under churn).
#include <gtest/gtest.h>

#include <memory>

#include "common/rng.hpp"
#include "overlay/overlay_network.hpp"
#include "sim/churn.hpp"
#include "storage/erasure.hpp"
#include "storage/object_store.hpp"

namespace aa::storage {
namespace {

// --- GF(256) ---

TEST(Gf256, MulDivInverse) {
  Rng rng(1);
  for (int i = 0; i < 500; ++i) {
    const auto a = static_cast<std::uint8_t>(1 + rng.below(255));
    const auto b = static_cast<std::uint8_t>(1 + rng.below(255));
    EXPECT_EQ(gf256::div(gf256::mul(a, b), b), a);
    EXPECT_EQ(gf256::mul(a, gf256::inv(a)), 1);
  }
}

TEST(Gf256, MulIdentityAndZero) {
  for (int a = 0; a < 256; ++a) {
    EXPECT_EQ(gf256::mul(static_cast<std::uint8_t>(a), 1), a);
    EXPECT_EQ(gf256::mul(static_cast<std::uint8_t>(a), 0), 0);
  }
}

TEST(Gf256, PowMatchesRepeatedMul) {
  std::uint8_t acc = 1;
  for (int n = 0; n < 10; ++n) {
    EXPECT_EQ(gf256::pow(7, n), acc);
    acc = gf256::mul(acc, 7);
  }
}

// --- Erasure coding ---

Bytes random_bytes(Rng& rng, std::size_t n) {
  Bytes b(n);
  for (auto& x : b) x = static_cast<std::uint8_t>(rng.below(256));
  return b;
}

TEST(Erasure, SystematicDataFragments) {
  ErasureCoder coder(4, 2);
  Rng rng(2);
  const Bytes object = random_bytes(rng, 400);
  const auto frags = coder.encode(object);
  ASSERT_EQ(frags.size(), 6u);
  // Data fragments carry the object bytes verbatim after the header.
  const std::size_t shard = 100;
  for (int i = 0; i < 4; ++i) {
    for (std::size_t b = 0; b < shard; ++b) {
      EXPECT_EQ(frags[static_cast<std::size_t>(i)].data[4 + b], object[shard * static_cast<std::size_t>(i) + b]);
    }
  }
}

TEST(Erasure, DecodeFromDataFragmentsOnly) {
  ErasureCoder coder(3, 2);
  Rng rng(3);
  const Bytes object = random_bytes(rng, 301);  // non-multiple of k
  auto frags = coder.encode(object);
  frags.resize(3);  // keep only the data fragments
  auto decoded = coder.decode(frags);
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value(), object);
}

TEST(Erasure, DecodeFailsBelowThreshold) {
  ErasureCoder coder(4, 2);
  Rng rng(4);
  auto frags = coder.encode(random_bytes(rng, 64));
  frags.resize(3);  // k-1 fragments
  EXPECT_FALSE(coder.decode(frags).is_ok());
}

TEST(Erasure, DuplicateFragmentsDoNotCount) {
  ErasureCoder coder(3, 1);
  Rng rng(5);
  auto frags = coder.encode(random_bytes(rng, 90));
  std::vector<Fragment> dup{frags[0], frags[0], frags[0]};
  EXPECT_FALSE(coder.decode(dup).is_ok());
}

TEST(Erasure, EmptyObjectRoundTrips) {
  ErasureCoder coder(2, 1);
  auto frags = coder.encode({});
  auto decoded = coder.decode(frags);
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_TRUE(decoded.value().empty());
}

// Property: any k of k+m fragments reconstruct, for random loss patterns.
class ErasureProperty : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ErasureProperty, AnyKFragmentsReconstruct) {
  const auto [k, m] = GetParam();
  ErasureCoder coder(k, m);
  Rng rng(static_cast<std::uint64_t>(k * 31 + m));
  for (int trial = 0; trial < 20; ++trial) {
    const Bytes object = random_bytes(rng, 1 + rng.below(700));
    auto frags = coder.encode(object);
    // Random subset of exactly k fragments.
    rng.shuffle(frags);
    frags.resize(static_cast<std::size_t>(k));
    auto decoded = coder.decode(frags);
    ASSERT_TRUE(decoded.is_ok()) << "k=" << k << " m=" << m;
    EXPECT_EQ(decoded.value(), object);
  }
}

INSTANTIATE_TEST_SUITE_P(Configurations, ErasureProperty,
                         ::testing::Values(std::tuple{2, 1}, std::tuple{3, 2}, std::tuple{4, 2},
                                           std::tuple{4, 4}, std::tuple{8, 3},
                                           std::tuple{1, 2}));

// --- StoreNode ---

TEST(StoreNode, ReplicaLifecycle) {
  StoreNode node(1024);
  const ObjectId id = Uid160::from_content("obj");
  node.store_replica(id, to_bytes("data"));
  ASSERT_NE(node.replica(id), nullptr);
  EXPECT_EQ(node.replica_bytes(), 4u);
  node.store_replica(id, to_bytes("newdata"));  // overwrite adjusts bytes
  EXPECT_EQ(node.replica_bytes(), 7u);
  EXPECT_TRUE(node.drop_replica(id));
  EXPECT_FALSE(node.drop_replica(id));
  EXPECT_EQ(node.replica_bytes(), 0u);
}

TEST(StoreNode, CacheLruEviction) {
  StoreNode node(10);  // tiny: fits two 4-byte objects + change
  const ObjectId a = Uid160::from_content("a");
  const ObjectId b = Uid160::from_content("b");
  const ObjectId c = Uid160::from_content("c");
  node.cache_put(a, to_bytes("aaaa"));
  node.cache_put(b, to_bytes("bbbb"));
  EXPECT_NE(node.cache_get(a), nullptr);  // refresh a; b is now LRU
  node.cache_put(c, to_bytes("cccc"));    // evicts b
  EXPECT_NE(node.cache_get(a), nullptr);
  EXPECT_EQ(node.cache_get(b), nullptr);
  EXPECT_NE(node.cache_get(c), nullptr);
  EXPECT_GE(node.stats().cache_evictions, 1u);
}

TEST(StoreNode, OversizeObjectNotCached) {
  StoreNode node(4);
  node.cache_put(Uid160::from_content("big"), to_bytes("toolarge"));
  EXPECT_EQ(node.cache_bytes(), 0u);
}

// --- ObjectStore over the overlay ---

struct StoreFixture {
  sim::Scheduler sched;
  std::shared_ptr<sim::Topology> topo;
  sim::Network net;
  overlay::OverlayNetwork overlay;

  explicit StoreFixture(std::size_t hosts)
      : topo(std::make_shared<sim::UniformTopology>(hosts, duration::millis(10))),
        net(sched, topo),
        overlay(net, no_maintenance()) {
    std::vector<sim::HostId> hs;
    for (sim::HostId h = 0; h < hosts; ++h) hs.push_back(h);
    overlay.build_ring(hs);
  }

  static overlay::OverlayNetwork::Params no_maintenance() {
    overlay::OverlayNetwork::Params p;
    p.maintenance_period = 0;
    return p;
  }
};

TEST(ObjectStore, PutThenGetFromAnywhere) {
  StoreFixture f(16);
  ObjectStore::Params p;
  p.replicas = 3;
  ObjectStore store(f.net, f.overlay, p);

  Result<ObjectId> put_result = Status(Code::kUnavailable, "pending");
  const ObjectId id = store.put(0, to_bytes("the knowledge"), [&](Result<ObjectId> r) {
    put_result = std::move(r);
  });
  f.sched.run();
  ASSERT_TRUE(put_result.is_ok()) << put_result.status().to_string();
  EXPECT_EQ(put_result.value(), id);
  EXPECT_EQ(store.live_replicas(id), 3);

  Result<Bytes> got = Status(Code::kUnavailable, "pending");
  store.get(7, id, [&](Result<Bytes> r) { got = std::move(r); });
  f.sched.run();
  ASSERT_TRUE(got.is_ok()) << got.status().to_string();
  EXPECT_EQ(to_string(got.value()), "the knowledge");
}

TEST(ObjectStore, ContentAddressing) {
  StoreFixture f(8);
  ObjectStore store(f.net, f.overlay, {});
  const ObjectId a = store.put(0, to_bytes("same"));
  const ObjectId b = store.put(1, to_bytes("same"));
  const ObjectId c = store.put(0, to_bytes("different"));
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  f.sched.run();
}

TEST(ObjectStore, GetMissingReportsNotFound) {
  StoreFixture f(8);
  ObjectStore store(f.net, f.overlay, {});
  Result<Bytes> got = Status(Code::kUnavailable, "pending");
  store.get(2, Uid160::from_content("never stored"), [&](Result<Bytes> r) { got = std::move(r); });
  f.sched.run();
  EXPECT_FALSE(got.is_ok());
  EXPECT_EQ(got.status().code(), Code::kNotFound);
}

TEST(ObjectStore, RepeatGetServedLocallyByCache) {
  StoreFixture f(16);
  ObjectStore store(f.net, f.overlay, {});
  const ObjectId id = store.put(0, to_bytes("hot object"));
  f.sched.run();

  int done = 0;
  store.get(9, id, [&](Result<Bytes> r) { ASSERT_TRUE(r.is_ok()); ++done; });
  f.sched.run();
  const auto before = store.stats().local_hits;
  store.get(9, id, [&](Result<Bytes> r) { ASSERT_TRUE(r.is_ok()); ++done; });
  f.sched.run();
  EXPECT_EQ(done, 2);
  EXPECT_EQ(store.stats().local_hits, before + 1);  // second hit was local
}

TEST(ObjectStore, CachingDisabledAlwaysFetchesRemotely) {
  StoreFixture f(16);
  ObjectStore::Params p;
  p.promiscuous_cache = false;
  ObjectStore store(f.net, f.overlay, p);
  const ObjectId id = store.put(0, to_bytes("cold object"));
  f.sched.run();
  for (int i = 0; i < 3; ++i) {
    store.get(9, id, [](Result<Bytes> r) { ASSERT_TRUE(r.is_ok()); });
    f.sched.run();
  }
  EXPECT_EQ(store.stats().local_hits, 0u);
}

TEST(ObjectStore, ErasureModeStoresFragmentsAndReconstructs) {
  StoreFixture f(16);
  ObjectStore::Params p;
  p.erasure = true;
  p.ec_data = 4;
  p.ec_parity = 2;
  ObjectStore store(f.net, f.overlay, p);

  Rng rng(6);
  Bytes object = random_bytes(rng, 500);
  const ObjectId id = store.put(3, object);
  f.sched.run();
  EXPECT_EQ(store.live_fragments(id), 6);

  Result<Bytes> got = Status(Code::kUnavailable, "pending");
  store.get(11, id, [&](Result<Bytes> r) { got = std::move(r); });
  f.sched.run();
  ASSERT_TRUE(got.is_ok()) << got.status().to_string();
  EXPECT_EQ(got.value(), object);
  EXPECT_GE(store.stats().reconstructions, 1u);
}

TEST(ObjectStore, ErasureSurvivesFragmentLoss) {
  StoreFixture f(16);
  ObjectStore::Params p;
  p.erasure = true;
  p.ec_data = 3;
  p.ec_parity = 2;
  p.promiscuous_cache = false;  // force reconstruction each time
  ObjectStore store(f.net, f.overlay, p);
  Rng rng(7);
  Bytes object = random_bytes(rng, 300);
  const ObjectId id = store.put(0, object);
  f.sched.run();

  // Kill two fragment holders (sparing the root, which coordinates the
  // reconstruction).
  const auto root = f.overlay.true_root(id);
  sim::ChurnInjector churn(f.net, {});
  int killed = 0;
  for (sim::HostId h = 0; h < 16 && killed < 2; ++h) {
    if (h != root.host && store.node(h)->fragment(id) != nullptr && f.net.host_up(h)) {
      churn.kill(h, false);
      ++killed;
    }
  }
  ASSERT_EQ(killed, 2);

  // Find a live requester that is not the dead fragment holder.
  sim::HostId requester = 0;
  while (!f.net.host_up(requester)) ++requester;
  Result<Bytes> got = Status(Code::kUnavailable, "pending");
  store.get(requester, id, [&](Result<Bytes> r) { got = std::move(r); });
  f.sched.run();
  ASSERT_TRUE(got.is_ok()) << got.status().to_string();
  EXPECT_EQ(got.value(), object);
}

TEST(ObjectStore, SelfHealingRestoresReplicaCount) {
  StoreFixture f(24);
  ObjectStore::Params p;
  p.replicas = 5;  // the paper's running example: "5 copies ... further
                   // copies should be made" (§4.6)
  p.healing_period = duration::seconds(5);
  ObjectStore store(f.net, f.overlay, p);
  // Healing relies on overlay leaf-set repair; enable gossip too.
  // (Overlay was built without maintenance; healing re-push uses current
  // leaf sets, which is sufficient when the root survives.)
  const ObjectId id = store.put(0, to_bytes("precious"));
  f.sched.run_for(duration::seconds(2));
  ASSERT_EQ(store.live_replicas(id), 5);

  // Kill two replica holders that are not the root.
  const auto root = f.overlay.true_root(id);
  sim::ChurnInjector churn(f.net, {});
  int killed = 0;
  for (sim::HostId h = 0; h < 24 && killed < 2; ++h) {
    if (h != root.host && store.node(h)->replica(id) != nullptr && f.net.host_up(h)) {
      churn.kill(h, false);
      ++killed;
    }
  }
  ASSERT_EQ(killed, 2);
  EXPECT_EQ(store.live_replicas(id), 3);

  f.sched.run_for(duration::seconds(30));  // several healing sweeps
  EXPECT_GE(store.live_replicas(id), 5);
  EXPECT_GT(store.stats().heal_pushes, 0u);
}

TEST(ObjectStore, TimeoutWhenRootUnreachable) {
  StoreFixture f(4);
  ObjectStore::Params p;
  p.request_timeout = duration::seconds(2);
  ObjectStore store(f.net, f.overlay, p);
  const ObjectId id = store.put(0, to_bytes("x"));
  f.sched.run();
  // Kill everyone except host 0 so the get can't be served remotely.
  sim::ChurnInjector churn(f.net, {});
  for (sim::HostId h = 1; h < 4; ++h) churn.kill(h, false);
  // host 0 may hold a replica (likely). Drop all local copies to force
  // a remote fetch into the void.
  store.node(0)->drop_replica(id);
  Result<Bytes> got = Status(Code::kUnavailable, "pending");
  store.get(0, id, [&](Result<Bytes> r) { got = std::move(r); });
  f.sched.run_for(duration::seconds(10));
  EXPECT_FALSE(got.is_ok());
}

}  // namespace
}  // namespace aa::storage
