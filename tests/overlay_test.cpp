// Tests for the Plaxton/Pastry overlay: identifier algebra, leaf-set
// and routing-table construction, routing correctness (messages reach
// the key's true root), logarithmic hop scaling, and repair under churn.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "common/rng.hpp"
#include "overlay/overlay_network.hpp"
#include "sim/churn.hpp"

namespace aa::overlay {
namespace {

struct Fixture {
  sim::Scheduler sched;
  std::shared_ptr<sim::Topology> topo;
  sim::Network net;

  explicit Fixture(std::size_t hosts, SimDuration latency = duration::millis(10))
      : topo(std::make_shared<sim::UniformTopology>(hosts, latency)), net(sched, topo) {}
};

std::vector<sim::HostId> hosts_upto(sim::HostId n) {
  std::vector<sim::HostId> v;
  for (sim::HostId h = 0; h < n; ++h) v.push_back(h);
  return v;
}

TEST(OverlayNode, ConsiderFillsRoutingSlot) {
  Fixture f(4);
  OverlayNode node(f.net, {Uid160::from_content("self"), 0}, false);
  const NodeRef peer{Uid160::from_content("peer"), 1};
  node.consider(peer);
  EXPECT_GE(node.routing_entries(), 1u);
  EXPECT_EQ(node.leaf_set().size(), 1u);
}

TEST(OverlayNode, IgnoresSelfAndInvalid) {
  Fixture f(4);
  const NodeRef self{Uid160::from_content("self"), 0};
  OverlayNode node(f.net, self, false);
  node.consider(self);
  node.consider(NodeRef{});
  EXPECT_EQ(node.routing_entries(), 0u);
  EXPECT_TRUE(node.leaf_set().empty());
}

TEST(OverlayNode, RemovePurgesPeer) {
  Fixture f(4);
  OverlayNode node(f.net, {Uid160::from_content("self"), 0}, false);
  const NodeRef peer{Uid160::from_content("peer"), 1};
  node.consider(peer);
  node.remove(peer.id);
  EXPECT_EQ(node.routing_entries(), 0u);
  EXPECT_TRUE(node.leaf_set().empty());
}

TEST(OverlayNode, NextHopNulloptWhenAlone) {
  Fixture f(4);
  OverlayNode node(f.net, {Uid160::from_content("self"), 0}, false);
  EXPECT_FALSE(node.next_hop(Uid160::from_content("key")).has_value());
}

TEST(OverlayNode, ReplicaSetClosestFirst) {
  Fixture f(8);
  OverlayNode node(f.net, {Uid160::from_content("self"), 0}, false);
  Rng rng(1);
  for (sim::HostId h = 1; h < 8; ++h) node.consider(NodeRef{rng.uid(), h});
  const ObjectId key = Uid160::from_content("obj");
  const auto set = node.replica_set(key, 3);
  ASSERT_LE(set.size(), 3u);
  for (std::size_t i = 1; i < set.size(); ++i) {
    EXPECT_TRUE(set[i - 1].id.closer_to(key, set[i].id));
  }
}

// --- Ring construction + routing correctness ---

TEST(OverlayNetwork, RoutesToTrueRoot) {
  Fixture f(32);
  OverlayNetwork::Params params;
  params.maintenance_period = 0;  // quiescent scheduler => run() terminates
  OverlayNetwork overlay(f.net, params);
  overlay.build_ring(hosts_upto(32));

  Rng rng(99);
  int delivered = 0, at_true_root = 0;
  // Register the app on every node; record where messages land.
  for (sim::HostId h : overlay.node_hosts()) {
    overlay.register_app("test", h,
                         [&, h](const ObjectId& key, const Bytes&, const RouteInfo&) {
                           ++delivered;
                           if (overlay.true_root(key).host == h) ++at_true_root;
                         });
  }
  for (int i = 0; i < 50; ++i) {
    overlay.route(static_cast<sim::HostId>(rng.below(32)), rng.uid(), "test", {});
  }
  f.sched.run();
  EXPECT_EQ(delivered, 50);
  // With settled leaf sets every delivery lands at the numerically
  // closest node.
  EXPECT_EQ(at_true_root, 50);
}

TEST(OverlayNetwork, RouteCarriesPayloadAndOrigin) {
  Fixture f(8);
  OverlayNetwork::Params params;
  params.maintenance_period = 0;
  OverlayNetwork overlay(f.net, params);
  overlay.build_ring(hosts_upto(8));
  Bytes got;
  sim::HostId origin = sim::kNoHost;
  for (sim::HostId h : overlay.node_hosts()) {
    overlay.register_app("test", h, [&](const ObjectId&, const Bytes& b, const RouteInfo& i) {
      got = b;
      origin = i.origin;
    });
  }
  overlay.route(3, Uid160::from_content("k"), "test", to_bytes("payload!"));
  f.sched.run();
  EXPECT_EQ(to_string(got), "payload!");
  EXPECT_EQ(origin, 3u);
}

TEST(OverlayNetwork, HopCountScalesLogarithmically) {
  auto mean_hops = [](std::size_t n) {
    Fixture f(n);
    OverlayNetwork::Params params;
    params.maintenance_period = 0;
    OverlayNetwork overlay(f.net, params);
    overlay.build_ring(hosts_upto(static_cast<sim::HostId>(n)));
    for (sim::HostId h : overlay.node_hosts()) {
      overlay.register_app("t", h, [](const ObjectId&, const Bytes&, const RouteInfo&) {});
    }
    Rng rng(5);
    for (int i = 0; i < 100; ++i) {
      overlay.route(static_cast<sim::HostId>(rng.below(n)), rng.uid(), "t", {});
    }
    f.sched.run();
    return overlay.route_hops().mean();
  };
  const double h64 = mean_hops(64);
  const double h256 = mean_hops(256);
  // Growth should be sub-linear: 4x nodes, far less than 4x hops.
  EXPECT_LT(h256, h64 * 2.0);
  // And hops stay near log16(N): generous upper bounds.
  EXPECT_LT(h64, 2.0 + std::log2(64) / 4.0 * 2.0);
}

TEST(OverlayNetwork, SurvivesNodeFailures) {
  Fixture f(48);
  OverlayNetwork::Params params;
  params.maintenance_period = duration::seconds(2);
  OverlayNetwork overlay(f.net, params);
  overlay.build_ring(hosts_upto(48));

  int delivered = 0;
  for (sim::HostId h : overlay.node_hosts()) {
    overlay.register_app("t", h,
                         [&](const ObjectId&, const Bytes&, const RouteInfo&) { ++delivered; });
  }

  // Kill a quarter of the nodes abruptly.
  sim::ChurnInjector churn(f.net, {});
  Rng rng(17);
  for (int i = 0; i < 12; ++i) {
    churn.kill(static_cast<sim::HostId>(1 + rng.below(47)), /*graceful=*/false);
  }
  // Let maintenance gossip repair leaf sets.
  f.sched.run_for(duration::seconds(20));

  int sent = 0;
  for (int i = 0; i < 60; ++i) {
    const sim::HostId from = static_cast<sim::HostId>(rng.below(48));
    if (!f.net.host_up(from)) continue;
    overlay.route(from, rng.uid(), "t", {});
    ++sent;
  }
  f.sched.run_for(duration::seconds(30));
  EXPECT_EQ(delivered, sent);
}

TEST(OverlayNetwork, DeliversAtTrueRootAfterChurnAndRepair) {
  Fixture f(32);
  OverlayNetwork::Params params;
  params.maintenance_period = duration::seconds(1);
  OverlayNetwork overlay(f.net, params);
  overlay.build_ring(hosts_upto(32));

  sim::ChurnInjector churn(f.net, {});
  for (sim::HostId h : {3u, 9u, 21u}) churn.kill(h, false);
  f.sched.run_for(duration::seconds(30));  // ample gossip rounds

  Rng rng(23);
  int at_root = 0, total = 0;
  for (sim::HostId h : overlay.node_hosts()) {
    overlay.register_app("t", h, [&, h](const ObjectId& key, const Bytes&, const RouteInfo&) {
      ++total;
      if (overlay.true_root(key).host == h) ++at_root;
    });
  }
  for (int i = 0; i < 40; ++i) {
    sim::HostId from = static_cast<sim::HostId>(rng.below(32));
    while (!f.net.host_up(from)) from = static_cast<sim::HostId>(rng.below(32));
    overlay.route(from, rng.uid(), "t", {});
  }
  f.sched.run_for(duration::seconds(30));
  EXPECT_EQ(total, 40);
  EXPECT_EQ(at_root, 40);
}

TEST(OverlayNetwork, ProximityNeighbourSelectionLowersStretch) {
  // On a Euclidean topology, PNS should give routes with total latency
  // closer to the direct latency than random neighbour selection.
  auto mean_stretch = [](bool pns) {
    sim::Scheduler sched;
    auto topo = std::make_shared<sim::EuclideanTopology>(128, 1000.0, duration::millis(1),
                                                         duration::micros(100), 7);
    sim::Network net(sched, topo);
    OverlayNetwork::Params params;
    params.proximity_selection = pns;
    params.maintenance_period = 0;
    OverlayNetwork overlay(net, params);
    overlay.build_ring(hosts_upto(128));

    // Measure routed latency vs direct latency origin->root.
    double sum_stretch = 0;
    int count = 0;
    SimTime sent_at = 0;
    sim::HostId origin = 0;
    for (sim::HostId h : overlay.node_hosts()) {
      overlay.register_app("t", h, [&, h](const ObjectId&, const Bytes&, const RouteInfo& info) {
        const SimDuration direct = topo->latency(info.origin, h);
        const SimDuration actual = sched.now() - sent_at;
        if (direct > 0) {
          sum_stretch += static_cast<double>(actual) / static_cast<double>(direct);
          ++count;
        }
      });
    }
    Rng rng(31);
    for (int i = 0; i < 80; ++i) {
      origin = static_cast<sim::HostId>(rng.below(128));
      sent_at = sched.now();
      overlay.route(origin, rng.uid(), "t", {});
      sched.run();  // one message at a time so latency attribution is exact
    }
    return count > 0 ? sum_stretch / count : 1e9;
  };
  EXPECT_LT(mean_stretch(true), mean_stretch(false));
}

TEST(OverlayNetwork, RoutingTablesStayCompact) {
  Fixture f(64);
  OverlayNetwork::Params params;
  params.maintenance_period = 0;
  OverlayNetwork overlay(f.net, params);
  overlay.build_ring(hosts_upto(64));
  // Pastry expects ~log16(N) populated rows of <=15 entries; allow slack
  // but verify we are nowhere near O(N) state per node.
  for (sim::HostId h : overlay.node_hosts()) {
    EXPECT_LT(overlay.node_at(h)->routing_entries(), 40u);
  }
}

}  // namespace
}  // namespace aa::overlay
