// Deterministic chaos suite for the link fault model + reliable
// transport (sim/network.hpp, sim/reliable.hpp).
//
// Method: run the same pub/sub workload twice — once on a clean network
// over the raw datagram path (the oracle), once with link faults,
// mid-run partitions and the ack/retry broker transport — and require
// the per-client delivery digests to be identical.  Clients are
// co-located with their access brokers, so every client<->broker hop is
// loopback (exempt from faults by design) and the end-to-end guarantee
// reduces to the inter-broker reliable path.  Everything is driven by
// the discrete-event scheduler from seeded Rngs: a failing (seed,
// scenario) pair replays bit-for-bit.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "obs/trace.hpp"
#include "pubsub/siena_network.hpp"
#include "sim/churn.hpp"
#include "storage/object_store.hpp"

namespace aa {
namespace {

using event::Event;
using event::Filter;
using event::Op;
using pubsub::SienaNetwork;

// Per-client sorted delivery digest; duplicate deliveries show up as
// repeated keys, so the comparison is sensitive to both loss and
// duplication.
using Digest = std::map<sim::HostId, std::vector<std::string>>;

constexpr std::size_t kHosts = 8;
constexpr int kRounds = 25;

sim::ReliableParams chaos_reliable_params() {
  // Retries must span a 300 ms partition window comfortably: with these
  // settings the 30-retry budget covers tens of seconds.
  sim::ReliableParams rp;
  rp.initial_rto = duration::millis(40);
  rp.backoff = 2.0;
  rp.max_rto = duration::seconds(1);
  rp.max_retries = 30;
  return rp;
}

struct ScenarioResult {
  Digest digest;
  std::uint64_t deliveries = 0;
  std::uint64_t give_ups = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t dropped_by_fault = 0;
  std::uint64_t deliver_spans = 0;  // only populated when tracing is on
  std::uint64_t bytes_sent = 0;     // post-quiesce traffic (publish phase)
  std::uint64_t messages_sent = 0;
};

// One full pub/sub run.  `mutate` (optional) is invoked right after the
// subscription tables quiesce, with the network and scheduler — chaos
// scenarios install faults and schedule partition cuts/heals there.
ScenarioResult run_scenario(bool reliable,
                            std::function<void(sim::Network&, sim::Scheduler&)> mutate,
                            bool tracing = false) {
  ScenarioResult result;
  sim::Scheduler sched;
  auto topo = std::make_shared<sim::UniformTopology>(kHosts, duration::millis(5));
  sim::Network net(sched, topo);
  if (tracing) net.enable_tracing();
  SienaNetwork ps(net, {0, 1, 2, 3, 4, 5, 6, 7});
  ps.connect_tree(2);  // edges: 0-1, 0-2, 1-3, 1-4, 2-5, 2-6, 3-7
  if (reliable) ps.enable_reliable_transport(chaos_reliable_params());

  Digest& digest = result.digest;
  for (sim::HostId h = 0; h < kHosts; ++h) {
    ps.attach_client(h, h);  // co-located: client hops are loopback
    ps.subscribe(h, Filter().where("type", Op::kEq, "t" + std::to_string(h % 4)),
                 [&digest, h](const Event& e) {
                   digest[h].push_back(e.get_string("key").value_or("?"));
                 });
  }
  sched.run();  // quiesce subscription propagation on a clean network
  net.reset_stats();

  if (mutate) mutate(net, sched);

  // 8 publishers x 25 rounds, one publish every 5 ms; each event's type
  // matches exactly two subscribers (hosts k and k+4).
  for (int r = 0; r < kRounds; ++r) {
    for (sim::HostId p = 0; p < kHosts; ++p) {
      const SimDuration when =
          duration::millis(5) * static_cast<SimDuration>(r * 8 + static_cast<int>(p) + 1);
      sched.after(when, [&ps, p, r] {
        Event e("t" + std::to_string((static_cast<int>(p) + r) % 4));
        e.set("key", "p" + std::to_string(p) + "r" + std::to_string(r));
        ps.publish(p, e);
      });
    }
  }
  sched.run();  // drain: retransmissions terminate once everything acks

  for (const auto& [h, keys] : digest) result.deliveries += keys.size();
  for (auto& [h, keys] : digest) std::sort(keys.begin(), keys.end());
  if (ps.reliable_transport() != nullptr) {
    result.give_ups = ps.reliable_transport()->stats().give_ups;
  }
  result.retransmits = net.stats().retransmits;
  result.dropped_by_fault = net.stats().dropped_by_fault;
  result.bytes_sent = net.stats().bytes_sent;
  result.messages_sent = net.stats().messages_sent;
  if (const obs::TraceCollector* tc = net.tracer()) {
    for (const obs::Span& s : tc->spans()) {
      if (s.action == "deliver") ++result.deliver_spans;
    }
  }
  return result;
}

ScenarioResult fault_free_oracle() {
  return run_scenario(/*reliable=*/false, nullptr);
}

// Schedules the chaos timeline for one seed: 10% drop (plus duplication
// and reordering) on every inter-broker link, and two partition windows
// that each sever one tree edge while publishing is in full swing.
void install_chaos(std::uint64_t seed, sim::Network& net, sim::Scheduler& sched) {
  sim::LinkFaults faults;
  faults.drop = 0.10;
  faults.duplicate = 0.05;
  faults.reorder = 0.10;
  faults.jitter = duration::millis(2);
  faults.seed = seed;
  net.set_link_faults(faults);
  // Cuts tree edge 0-2: subtree {2,5,6} is unreachable until heal.
  sched.after(duration::millis(200),
              [&net] { net.partition("cut-a", {0, 1, 3, 4, 7}, {2, 5, 6}); });
  sched.after(duration::millis(500), [&net] { net.heal("cut-a"); });
  // Cuts tree edge 0-1: subtree {1,3,4,7} is unreachable until heal.
  sched.after(duration::millis(600),
              [&net] { net.partition("cut-b", {0, 2, 5, 6}, {1, 3, 4, 7}); });
  sched.after(duration::millis(900), [&net] { net.heal("cut-b"); });
}

TEST(Chaos, SeedSweepDigestsMatchFaultFreeOracle) {
  const ScenarioResult oracle = fault_free_oracle();
  // 200 events, each matching exactly 2 subscriptions.
  ASSERT_EQ(oracle.deliveries, static_cast<std::uint64_t>(kRounds) * kHosts * 2);

  for (std::uint64_t seed = 1; seed <= 21; ++seed) {
    const ScenarioResult chaos =
        run_scenario(/*reliable=*/true, [seed](sim::Network& net, sim::Scheduler& sched) {
          install_chaos(seed, net, sched);
        });
    EXPECT_EQ(chaos.digest, oracle.digest) << "seed " << seed;
    EXPECT_EQ(chaos.give_ups, 0u) << "seed " << seed;
    // The faults were real: losses happened and retries papered over
    // them (guards against the sweep silently testing a clean network).
    EXPECT_GT(chaos.dropped_by_fault, 0u) << "seed " << seed;
    EXPECT_GT(chaos.retransmits, 0u) << "seed " << seed;
  }
}

TEST(Chaos, CleanNetworkTrafficBitIdenticalGolden) {
  // Golden pin for the event-representation refactor: the fault-free
  // scenario's traffic counters depend on every event's exact XML byte
  // length, so these constants (captured from the pre-COW std::map
  // representation) prove the wire form is bit-identical end to end.
  // Also the fan-out serialisation guarantee: 200 published events cross
  // 1208 packets, yet each is rendered to XML exactly once — handles in
  // packet bodies share one cached payload.
  const std::uint64_t renders_before = Event::serializations();
  const ScenarioResult oracle = fault_free_oracle();
  EXPECT_EQ(oracle.deliveries, 400u);
  EXPECT_EQ(oracle.bytes_sent, 126360u);
  EXPECT_EQ(oracle.messages_sent, 1208u);
  EXPECT_EQ(Event::serializations() - renders_before,
            static_cast<std::uint64_t>(kRounds) * kHosts);

  // The same pin must hold with tracing enabled: trace stamps ride the
  // Event handle, never the shared payload or the wire form.
  const ScenarioResult traced = run_scenario(/*reliable=*/false, nullptr, /*tracing=*/true);
  EXPECT_EQ(traced.digest, oracle.digest);
  EXPECT_EQ(traced.bytes_sent, oracle.bytes_sent);
  EXPECT_EQ(traced.messages_sent, oracle.messages_sent);
}

TEST(Chaos, KilledLinkConvergesAfterRestore) {
  // Kill one tree edge outright mid-run (every packet dropped), restore
  // it later: the reliable path must deliver the full oracle digest.
  const ScenarioResult oracle = fault_free_oracle();
  const ScenarioResult chaos =
      run_scenario(/*reliable=*/true, [](sim::Network& net, sim::Scheduler& sched) {
        sched.after(duration::millis(150), [&net] {
          net.set_link_faults(0, 2, sim::LinkFaults{.drop = 1.0});
        });
        sched.after(duration::millis(450), [&net] { net.clear_link_faults(); });
      });
  EXPECT_EQ(chaos.digest, oracle.digest);
  EXPECT_EQ(chaos.give_ups, 0u);
  EXPECT_GT(chaos.retransmits, 0u);
}

TEST(Chaos, TracingIsPureObservation) {
  // Tracing must not perturb the simulation: the same chaos scenario
  // run with tracing on yields a bit-identical delivery digest and the
  // identical fault/retry counters — while actually recording spans
  // (one deliver span per delivery, duplicates deduped before spans).
  const auto scenario = [](sim::Network& net, sim::Scheduler& sched) {
    install_chaos(5, net, sched);
  };
  const ScenarioResult off = run_scenario(/*reliable=*/true, scenario, /*tracing=*/false);
  const ScenarioResult on = run_scenario(/*reliable=*/true, scenario, /*tracing=*/true);
  EXPECT_EQ(on.digest, off.digest);
  EXPECT_EQ(on.deliveries, off.deliveries);
  EXPECT_EQ(on.give_ups, off.give_ups);
  EXPECT_EQ(on.retransmits, off.retransmits);
  EXPECT_EQ(on.dropped_by_fault, off.dropped_by_fault);
  EXPECT_EQ(off.deliver_spans, 0u);
  EXPECT_EQ(on.deliver_spans, on.deliveries);
}

TEST(Chaos, RawPathDivergesUnderFaults) {
  // Control experiment: the same faults without the reliable transport
  // must lose deliveries — otherwise the sweep above proves nothing.
  const ScenarioResult oracle = fault_free_oracle();
  const ScenarioResult lossy =
      run_scenario(/*reliable=*/false, [](sim::Network& net, sim::Scheduler& sched) {
        install_chaos(5, net, sched);
      });
  EXPECT_NE(lossy.digest, oracle.digest);
  EXPECT_LT(lossy.deliveries, oracle.deliveries);
}

TEST(Chaos, OverlayGossipRetransmitsOnLossyLinks) {
  // Leaf-set gossip rides the "ov.r" reliable transport: under 20% link
  // loss the gossip keeps flowing (via retries) and the overlay still
  // routes correctly once the faults lift.
  sim::Scheduler sched;
  auto topo = std::make_shared<sim::UniformTopology>(12, duration::millis(10));
  sim::Network net(sched, topo);
  overlay::OverlayNetwork::Params op;
  op.maintenance_period = duration::seconds(2);
  op.reliable_maintenance = true;
  op.reliable = chaos_reliable_params();
  overlay::OverlayNetwork overlay(net, op);
  std::vector<sim::HostId> hosts;
  for (sim::HostId h = 0; h < 12; ++h) hosts.push_back(h);
  overlay.build_ring(hosts);
  net.reset_stats();

  net.set_link_faults({.drop = 0.20, .seed = 77});
  sched.run_for(duration::seconds(20));
  EXPECT_GT(net.stats().dropped_by_fault, 0u);
  EXPECT_GT(net.stats().retransmits, 0u);
  net.clear_link_faults();

  int delivered = 0;
  for (sim::HostId h = 0; h < 12; ++h) {
    overlay.register_app("t", h,
                         [&delivered](const ObjectId&, const Bytes&,
                                      const overlay::RouteInfo&) { ++delivered; });
  }
  Rng rng(9);
  overlay.route(3, rng.uid(), "t", Bytes{});
  sched.run_for(duration::seconds(5));  // run(): maintenance never drains
  EXPECT_EQ(delivered, 1);
}

TEST(Chaos, StorageHealingRepairsThroughLossyLinks) {
  // Replica repair rides the "store.r" reliable transport: healing
  // pushes recreate lost copies even when every link drops 20% of
  // packets, and the repaired replica count converges to the target.
  sim::Scheduler sched;
  auto topo = std::make_shared<sim::UniformTopology>(16, duration::millis(10));
  sim::Network net(sched, topo);
  overlay::OverlayNetwork::Params op;
  op.maintenance_period = 0;
  overlay::OverlayNetwork overlay(net, op);
  std::vector<sim::HostId> hosts;
  for (sim::HostId h = 0; h < 16; ++h) hosts.push_back(h);
  overlay.build_ring(hosts);

  storage::ObjectStore::Params p;
  p.replicas = 5;
  p.healing_period = duration::seconds(5);
  p.reliable_repair = true;
  p.reliable = chaos_reliable_params();
  storage::ObjectStore store(net, overlay, p);

  const ObjectId id = store.put(0, Bytes{'p', 'r', 'e', 'c', 'i', 'o', 'u', 's'});
  sched.run_for(duration::seconds(2));
  ASSERT_EQ(store.live_replicas(id), 5);

  net.set_link_faults({.drop = 0.20, .duplicate = 0.05, .seed = 0xC4A05});

  const auto root = overlay.true_root(id);
  sim::ChurnInjector churn(net, {});
  int killed = 0;
  for (sim::HostId h = 0; h < 16 && killed < 2; ++h) {
    if (h != root.host && store.node(h)->replica(id) != nullptr && net.host_up(h)) {
      churn.kill(h, false);
      ++killed;
    }
  }
  ASSERT_EQ(killed, 2);
  EXPECT_EQ(store.live_replicas(id), 3);

  sched.run_for(duration::seconds(30));  // several healing sweeps
  EXPECT_GE(store.live_replicas(id), 5);
  EXPECT_GT(store.stats().heal_pushes, 0u);
  EXPECT_GT(net.stats().retransmits, 0u);
}

}  // namespace
}  // namespace aa
