// Deterministic chaos suite for the link fault model + reliable
// transport (sim/network.hpp, sim/reliable.hpp).
//
// Method: run the same pub/sub workload twice — once on a clean network
// over the raw datagram path (the oracle), once with link faults,
// mid-run partitions and the ack/retry broker transport — and require
// the per-client delivery digests to be identical.  Clients are
// co-located with their access brokers, so every client<->broker hop is
// loopback (exempt from faults by design) and the end-to-end guarantee
// reduces to the inter-broker reliable path.  Everything is driven by
// the discrete-event scheduler from seeded Rngs: a failing (seed,
// scenario) pair replays bit-for-bit.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "common/bytes.hpp"
#include "common/hash.hpp"
#include "common/rng.hpp"
#include "obs/trace.hpp"
#include "pubsub/siena_network.hpp"
#include "sim/churn.hpp"
#include "sim/durable_disk.hpp"
#include "storage/durability.hpp"
#include "storage/object_store.hpp"
#include "wire/codec.hpp"

#include <atomic>
#include <span>

namespace aa {
namespace {

using event::Event;
using event::Filter;
using event::Op;
using pubsub::SienaNetwork;

// Per-client sorted delivery digest; duplicate deliveries show up as
// repeated keys, so the comparison is sensitive to both loss and
// duplication.
using Digest = std::map<sim::HostId, std::vector<std::string>>;

constexpr std::size_t kHosts = 8;
constexpr int kRounds = 25;

sim::ReliableParams chaos_reliable_params() {
  // Retries must span a 300 ms partition window comfortably: with these
  // settings the 30-retry budget covers tens of seconds.
  sim::ReliableParams rp;
  rp.initial_rto = duration::millis(40);
  rp.backoff = 2.0;
  rp.max_rto = duration::seconds(1);
  rp.max_retries = 30;
  return rp;
}

// Wire-path variation for the codec/batching equivalence matrix: which
// codec the whole bus negotiates, whether per-link batching coalesces
// sends, and whether the digest records full rendered payloads (the
// byte-identity check) instead of just keys.  Defaults reproduce the
// pre-codec scenario exactly — the traffic golden depends on that.
struct WireOptions {
  wire::WireCodec codec = wire::WireCodec::kXml;
  bool batching = false;
  bool payload_digest = false;
};

struct ScenarioResult {
  Digest digest;
  std::uint64_t deliveries = 0;
  std::uint64_t codec_roundtrip_failures = 0;
  std::uint64_t give_ups = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t dropped_by_fault = 0;
  std::uint64_t deliver_spans = 0;  // only populated when tracing is on
  std::uint64_t bytes_sent = 0;     // post-quiesce traffic (publish phase)
  std::uint64_t messages_sent = 0;
  sim::NetworkStats net_stats;      // full counters (publish phase)
  pubsub::BrokerStats broker;       // summed over all brokers
  // Structural span content (tracing on): every span rendered to a
  // shard-count-independent key — trace id, host, component, action,
  // virtual times, detail, and the *content* of its parent rather than
  // the raw span id (ids encode the producing slot, which legitimately
  // differs across shard counts).
  std::multiset<std::string> span_multiset;
  std::string chrome_export;  // Network::export_chrome_trace (tracing on)
};

// Field-wise comparable projections; keep in sync with the structs.
auto net_stats_key(const sim::NetworkStats& s) {
  return std::tuple(s.messages_sent, s.messages_delivered, s.messages_dropped,
                    s.bytes_sent, s.duplicated, s.retransmits, s.dropped_by_fault);
}
auto broker_stats_key(const pubsub::BrokerStats& s) {
  return std::tuple(s.publications_routed, s.deliveries, s.subscriptions_forwarded,
                    s.subscriptions_suppressed, s.match_tests, s.index_probes,
                    s.checkpoints, s.checkpoint_bytes, s.recoveries,
                    s.recovered_entries, s.sync_requests, s.sync_replies,
                    s.sync_retries, s.sync_give_ups);
}

// One full pub/sub run.  `mutate` (optional) is invoked right after the
// subscription tables quiesce, with the network and scheduler — chaos
// scenarios install faults and schedule partition cuts/heals there.
// `threads` > 1 runs the publish phase on the sharded scheduler.
ScenarioResult run_scenario(bool reliable,
                            std::function<void(sim::Network&, sim::Scheduler&)> mutate,
                            bool tracing = false, unsigned threads = 1,
                            bool profiling = false, WireOptions wire = {}) {
  ScenarioResult result;
  sim::Scheduler sched;
  auto topo = std::make_shared<sim::UniformTopology>(kHosts, duration::millis(5));
  sim::Network net(sched, topo);
  if (tracing) net.enable_tracing();
  if (profiling) net.enable_profiling();
  if (threads > 1) net.set_threads(threads);
  SienaNetwork ps(net, {0, 1, 2, 3, 4, 5, 6, 7});
  ps.connect_tree(2);  // edges: 0-1, 0-2, 1-3, 1-4, 2-5, 2-6, 3-7
  if (reliable) ps.enable_reliable_transport(chaos_reliable_params());
  ps.set_codec(wire.codec);
  if (wire.batching) {
    const wire::Codec& frame_codec = wire::codec(wire.codec);
    net.enable_batching(0, [&frame_codec](std::span<const std::size_t> sizes) {
      return frame_codec.frame_size(sizes);
    });
  }
  // Per-delivery transparency check (payload mode): every delivered
  // event must survive a binary encode->decode round trip with its
  // canonical rendering intact.  Counted, not EXPECTed: the callback
  // runs on shard threads.
  auto roundtrip_failures = std::make_shared<std::atomic<std::uint64_t>>(0);

  Digest& digest = result.digest;
  for (sim::HostId h = 0; h < kHosts; ++h) {
    digest[h];  // create the node now: handlers on shard threads may only
                // append to their own vector, never grow the shared tree
    ps.attach_client(h, h);  // co-located: client hops are loopback
    ps.subscribe(h, Filter().where("type", Op::kEq, "t" + std::to_string(h % 4)),
                 [&digest, h, payload = wire.payload_digest,
                  roundtrip_failures](const Event& e) {
                   if (!payload) {
                     digest[h].push_back(e.get_string("key").value_or("?"));
                     return;
                   }
                   const std::string rendered = e.to_xml_string();
                   BufWriter w;
                   pubsub::encode(w, wire::binary_codec(), pubsub::DeliverMsg{e});
                   BufReader r(w.data());
                   auto back = pubsub::decode_deliver(r, wire::binary_codec());
                   if (!back.is_ok() ||
                       back.value().event.to_xml_string() != rendered) {
                     ++*roundtrip_failures;
                   }
                   digest[h].push_back(rendered);
                 });
  }
  sched.run();  // quiesce subscription propagation on a clean network
  net.reset_stats();

  if (mutate) mutate(net, sched);

  // 8 publishers x 25 rounds, one publish every 5 ms; each event's type
  // matches exactly two subscribers (hosts k and k+4).
  for (int r = 0; r < kRounds; ++r) {
    for (sim::HostId p = 0; p < kHosts; ++p) {
      const SimDuration when =
          duration::millis(5) * static_cast<SimDuration>(r * 8 + static_cast<int>(p) + 1);
      sched.after(when, [&ps, p, r] {
        Event e("t" + std::to_string((static_cast<int>(p) + r) % 4));
        e.set("key", "p" + std::to_string(p) + "r" + std::to_string(r));
        ps.publish(p, e);
      });
    }
  }
  sched.run();  // drain: retransmissions terminate once everything acks

  for (const auto& [h, keys] : digest) result.deliveries += keys.size();
  for (auto& [h, keys] : digest) std::sort(keys.begin(), keys.end());
  result.codec_roundtrip_failures = roundtrip_failures->load();
  if (ps.reliable_transport() != nullptr) {
    result.give_ups = ps.reliable_transport()->stats().give_ups;
  }
  result.net_stats = net.stats();
  result.broker = ps.total_broker_stats();
  result.retransmits = result.net_stats.retransmits;
  result.dropped_by_fault = result.net_stats.dropped_by_fault;
  result.bytes_sent = result.net_stats.bytes_sent;
  result.messages_sent = result.net_stats.messages_sent;
  if (const obs::TraceCollector* tc = net.tracer()) {
    std::map<std::uint64_t, const obs::Span*> by_id;
    for (const obs::Span& s : tc->spans()) by_id[s.id] = &s;
    const auto content = [](const obs::Span& s) {
      return std::to_string(s.trace_id) + "|" + std::to_string(s.host) + "|" +
             s.component + "|" + s.action + "|" + std::to_string(s.start) + "|" +
             std::to_string(s.end) + "|" + s.detail;
    };
    for (const obs::Span& s : tc->spans()) {
      if (s.action == "deliver") ++result.deliver_spans;
      std::string key = content(s);
      const auto pit = by_id.find(s.parent);
      key += "|parent:" + (pit == by_id.end() ? std::string("-") : content(*pit->second));
      result.span_multiset.insert(std::move(key));
    }
    std::ostringstream out;
    net.export_chrome_trace(out);
    result.chrome_export = out.str();
  }
  return result;
}

ScenarioResult fault_free_oracle() {
  return run_scenario(/*reliable=*/false, nullptr);
}

// Schedules the chaos timeline for one seed: 10% drop (plus duplication
// and reordering) on every inter-broker link, and two partition windows
// that each sever one tree edge while publishing is in full swing.
void install_chaos(std::uint64_t seed, sim::Network& net, sim::Scheduler& sched) {
  sim::LinkFaults faults;
  faults.drop = 0.10;
  faults.duplicate = 0.05;
  faults.reorder = 0.10;
  faults.jitter = duration::millis(2);
  faults.seed = seed;
  net.set_link_faults(faults);
  // Cuts tree edge 0-2: subtree {2,5,6} is unreachable until heal.
  sched.after(duration::millis(200),
              [&net] { net.partition("cut-a", {0, 1, 3, 4, 7}, {2, 5, 6}); });
  sched.after(duration::millis(500), [&net] { net.heal("cut-a"); });
  // Cuts tree edge 0-1: subtree {1,3,4,7} is unreachable until heal.
  sched.after(duration::millis(600),
              [&net] { net.partition("cut-b", {0, 2, 5, 6}, {1, 3, 4, 7}); });
  sched.after(duration::millis(900), [&net] { net.heal("cut-b"); });
}

TEST(Chaos, SeedSweepDigestsMatchFaultFreeOracle) {
  const ScenarioResult oracle = fault_free_oracle();
  // 200 events, each matching exactly 2 subscriptions.
  ASSERT_EQ(oracle.deliveries, static_cast<std::uint64_t>(kRounds) * kHosts * 2);

  for (std::uint64_t seed = 1; seed <= 21; ++seed) {
    const ScenarioResult chaos =
        run_scenario(/*reliable=*/true, [seed](sim::Network& net, sim::Scheduler& sched) {
          install_chaos(seed, net, sched);
        });
    EXPECT_EQ(chaos.digest, oracle.digest) << "seed " << seed;
    EXPECT_EQ(chaos.give_ups, 0u) << "seed " << seed;
    // The faults were real: losses happened and retries papered over
    // them (guards against the sweep silently testing a clean network).
    EXPECT_GT(chaos.dropped_by_fault, 0u) << "seed " << seed;
    EXPECT_GT(chaos.retransmits, 0u) << "seed " << seed;
  }
}

// --- Codec / batching equivalence matrix --------------------------------
//
// The wire codec and per-link batching are transport details: for every
// {codec} x {batching} x {shards} configuration, 21 chaos seeds must
// deliver the byte-identical payload set the fault-free oracle does,
// every delivered event must survive a binary encode->decode round
// trip, and for a fixed seed the full traffic counters must not depend
// on the shard count.
void sweep_codec_config(wire::WireCodec codec, bool batching) {
  WireOptions oracle_opts;
  oracle_opts.payload_digest = true;
  const ScenarioResult oracle =
      run_scenario(/*reliable=*/false, nullptr, false, 1, false, oracle_opts);
  ASSERT_EQ(oracle.deliveries, static_cast<std::uint64_t>(kRounds) * kHosts * 2);
  ASSERT_EQ(oracle.codec_roundtrip_failures, 0u);

  WireOptions opts;
  opts.codec = codec;
  opts.batching = batching;
  opts.payload_digest = true;
  for (std::uint64_t seed = 1; seed <= 21; ++seed) {
    ScenarioResult seq;  // threads == 1: the determinism baseline
    for (unsigned threads : {1u, 2u, 4u}) {
      ScenarioResult r = run_scenario(
          /*reliable=*/true,
          [seed](sim::Network& net, sim::Scheduler& sched) {
            install_chaos(seed, net, sched);
          },
          false, threads, false, opts);
      EXPECT_EQ(r.digest, oracle.digest)
          << "seed " << seed << " threads " << threads;
      EXPECT_EQ(r.codec_roundtrip_failures, 0u)
          << "seed " << seed << " threads " << threads;
      EXPECT_EQ(r.give_ups, 0u) << "seed " << seed;
      if (threads == 1) {
        seq = std::move(r);
        EXPECT_GT(seq.dropped_by_fault, 0u) << "seed " << seed;
        if (batching) EXPECT_GT(seq.net_stats.frames_sent, 0u) << "seed " << seed;
      } else {
        EXPECT_EQ(net_stats_key(r.net_stats), net_stats_key(seq.net_stats))
            << "seed " << seed << " threads " << threads;
        EXPECT_EQ(r.net_stats.frames_sent, seq.net_stats.frames_sent)
            << "seed " << seed << " threads " << threads;
        EXPECT_EQ(r.net_stats.batched_messages, seq.net_stats.batched_messages)
            << "seed " << seed << " threads " << threads;
      }
    }
  }
}

TEST(ChaosCodec, XmlUnbatchedMatrixMatchesOracle) {
  sweep_codec_config(wire::WireCodec::kXml, /*batching=*/false);
}
TEST(ChaosCodec, XmlBatchedMatrixMatchesOracle) {
  sweep_codec_config(wire::WireCodec::kXml, /*batching=*/true);
}
TEST(ChaosCodec, BinaryUnbatchedMatrixMatchesOracle) {
  sweep_codec_config(wire::WireCodec::kBinary, /*batching=*/false);
}
TEST(ChaosCodec, BinaryBatchedMatrixMatchesOracle) {
  sweep_codec_config(wire::WireCodec::kBinary, /*batching=*/true);
}

TEST(ChaosCodec, BinaryShrinksTrafficAndBatchingCutsPackets) {
  // Clean-network cross-checks on the same workload the golden pins:
  // the binary codec must at least halve bytes on the wire, and
  // batching must move multiple messages per physical packet, all
  // without touching the delivered payload set.
  WireOptions xml_opts;
  xml_opts.payload_digest = true;
  const ScenarioResult xml =
      run_scenario(/*reliable=*/false, nullptr, false, 1, false, xml_opts);

  WireOptions bin_opts = xml_opts;
  bin_opts.codec = wire::WireCodec::kBinary;
  const ScenarioResult bin =
      run_scenario(/*reliable=*/false, nullptr, false, 1, false, bin_opts);
  EXPECT_EQ(bin.digest, xml.digest);
  EXPECT_EQ(bin.messages_sent, xml.messages_sent);
  EXPECT_LE(bin.bytes_sent * 2, xml.bytes_sent)
      << "binary must be at least a 2x bytes-on-wire reduction";

  WireOptions batched = bin_opts;
  batched.batching = true;
  const ScenarioResult coalesced =
      run_scenario(/*reliable=*/false, nullptr, false, 1, false, batched);
  EXPECT_EQ(coalesced.digest, xml.digest);
  EXPECT_GT(coalesced.net_stats.frames_sent, 0u);
  EXPECT_LT(coalesced.net_stats.packets_sent(), coalesced.net_stats.messages_sent);
  // Binary frames share one envelope across members: coalescing must
  // not cost bytes relative to standalone binary datagrams.
  EXPECT_LE(coalesced.bytes_sent, bin.bytes_sent);
}

TEST(ChaosCodec, MixedOverlayDegradesPerLinkNotPerService) {
  // One XML-only broker in an otherwise binary overlay: links touching
  // it fall back to XML, everything else stays binary, and delivery is
  // unaffected.  Wire sizes differ per link, so total bytes must land
  // strictly between all-binary and all-XML.
  WireOptions xml_opts;
  xml_opts.payload_digest = true;
  const ScenarioResult xml =
      run_scenario(/*reliable=*/false, nullptr, false, 1, false, xml_opts);
  WireOptions bin_opts = xml_opts;
  bin_opts.codec = wire::WireCodec::kBinary;
  const ScenarioResult bin =
      run_scenario(/*reliable=*/false, nullptr, false, 1, false, bin_opts);

  ScenarioResult mixed;
  {
    sim::Scheduler sched;
    auto topo = std::make_shared<sim::UniformTopology>(kHosts, duration::millis(5));
    sim::Network net(sched, topo);
    SienaNetwork ps(net, {0, 1, 2, 3, 4, 5, 6, 7});
    ps.connect_tree(2);
    ps.set_codec(wire::WireCodec::kBinary);
    ps.set_host_codec(1, wire::WireCodec::kXml);  // legacy interior broker
    Digest& digest = mixed.digest;
    for (sim::HostId h = 0; h < kHosts; ++h) {
      digest[h];
      ps.attach_client(h, h);
      ps.subscribe(h, Filter().where("type", Op::kEq, "t" + std::to_string(h % 4)),
                   [&digest, h](const Event& e) {
                     digest[h].push_back(e.to_xml_string());
                   });
    }
    sched.run();
    net.reset_stats();
    for (int r = 0; r < kRounds; ++r) {
      for (sim::HostId p = 0; p < kHosts; ++p) {
        const SimDuration when = duration::millis(5) *
                                 static_cast<SimDuration>(r * 8 + static_cast<int>(p) + 1);
        sched.after(when, [&ps, p, r] {
          Event e("t" + std::to_string((static_cast<int>(p) + r) % 4));
          e.set("key", "p" + std::to_string(p) + "r" + std::to_string(r));
          ps.publish(p, e);
        });
      }
    }
    sched.run();
    for (auto& [h, keys] : digest) std::sort(keys.begin(), keys.end());
    mixed.bytes_sent = net.stats().bytes_sent;
  }
  EXPECT_EQ(mixed.digest, xml.digest);
  EXPECT_GT(mixed.bytes_sent, bin.bytes_sent);
  EXPECT_LT(mixed.bytes_sent, xml.bytes_sent);
}

TEST(Chaos, CleanNetworkTrafficBitIdenticalGolden) {
  // Golden pin for the event-representation refactor: the fault-free
  // scenario's traffic counters depend on every event's exact XML byte
  // length, so these constants (captured from the pre-COW std::map
  // representation) prove the wire form is bit-identical end to end.
  // Also the fan-out serialisation guarantee: 200 published events cross
  // 1208 packets, yet each is rendered to XML exactly once — handles in
  // packet bodies share one cached payload.
  const std::uint64_t renders_before = Event::serializations();
  const ScenarioResult oracle = fault_free_oracle();
  EXPECT_EQ(oracle.deliveries, 400u);
  EXPECT_EQ(oracle.bytes_sent, 126360u);
  EXPECT_EQ(oracle.messages_sent, 1208u);
  EXPECT_EQ(Event::serializations() - renders_before,
            static_cast<std::uint64_t>(kRounds) * kHosts);

  // The same pin must hold with tracing enabled: trace stamps ride the
  // Event handle, never the shared payload or the wire form.
  const ScenarioResult traced = run_scenario(/*reliable=*/false, nullptr, /*tracing=*/true);
  EXPECT_EQ(traced.digest, oracle.digest);
  EXPECT_EQ(traced.bytes_sent, oracle.bytes_sent);
  EXPECT_EQ(traced.messages_sent, oracle.messages_sent);
}

TEST(Chaos, KilledLinkConvergesAfterRestore) {
  // Kill one tree edge outright mid-run (every packet dropped), restore
  // it later: the reliable path must deliver the full oracle digest.
  const ScenarioResult oracle = fault_free_oracle();
  const ScenarioResult chaos =
      run_scenario(/*reliable=*/true, [](sim::Network& net, sim::Scheduler& sched) {
        sched.after(duration::millis(150), [&net] {
          net.set_link_faults(0, 2, sim::LinkFaults{.drop = 1.0});
        });
        sched.after(duration::millis(450), [&net] { net.clear_link_faults(); });
      });
  EXPECT_EQ(chaos.digest, oracle.digest);
  EXPECT_EQ(chaos.give_ups, 0u);
  EXPECT_GT(chaos.retransmits, 0u);
}

TEST(Chaos, TracingIsPureObservation) {
  // Tracing must not perturb the simulation: the same chaos scenario
  // run with tracing on yields a bit-identical delivery digest and the
  // identical fault/retry counters — while actually recording spans
  // (one deliver span per delivery, duplicates deduped before spans).
  const auto scenario = [](sim::Network& net, sim::Scheduler& sched) {
    install_chaos(5, net, sched);
  };
  const ScenarioResult off = run_scenario(/*reliable=*/true, scenario, /*tracing=*/false);
  const ScenarioResult on = run_scenario(/*reliable=*/true, scenario, /*tracing=*/true);
  EXPECT_EQ(on.digest, off.digest);
  EXPECT_EQ(on.deliveries, off.deliveries);
  EXPECT_EQ(on.give_ups, off.give_ups);
  EXPECT_EQ(on.retransmits, off.retransmits);
  EXPECT_EQ(on.dropped_by_fault, off.dropped_by_fault);
  EXPECT_EQ(off.deliver_spans, 0u);
  EXPECT_EQ(on.deliver_spans, on.deliveries);
}

TEST(Chaos, RawPathDivergesUnderFaults) {
  // Control experiment: the same faults without the reliable transport
  // must lose deliveries — otherwise the sweep above proves nothing.
  const ScenarioResult oracle = fault_free_oracle();
  const ScenarioResult lossy =
      run_scenario(/*reliable=*/false, [](sim::Network& net, sim::Scheduler& sched) {
        install_chaos(5, net, sched);
      });
  EXPECT_NE(lossy.digest, oracle.digest);
  EXPECT_LT(lossy.deliveries, oracle.deliveries);
}

TEST(Chaos, OverlayGossipRetransmitsOnLossyLinks) {
  // Leaf-set gossip rides the "ov.r" reliable transport: under 20% link
  // loss the gossip keeps flowing (via retries) and the overlay still
  // routes correctly once the faults lift.
  sim::Scheduler sched;
  auto topo = std::make_shared<sim::UniformTopology>(12, duration::millis(10));
  sim::Network net(sched, topo);
  overlay::OverlayNetwork::Params op;
  op.maintenance_period = duration::seconds(2);
  op.reliable_maintenance = true;
  op.reliable = chaos_reliable_params();
  overlay::OverlayNetwork overlay(net, op);
  std::vector<sim::HostId> hosts;
  for (sim::HostId h = 0; h < 12; ++h) hosts.push_back(h);
  overlay.build_ring(hosts);
  net.reset_stats();

  net.set_link_faults({.drop = 0.20, .seed = 77});
  sched.run_for(duration::seconds(20));
  EXPECT_GT(net.stats().dropped_by_fault, 0u);
  EXPECT_GT(net.stats().retransmits, 0u);
  net.clear_link_faults();

  int delivered = 0;
  for (sim::HostId h = 0; h < 12; ++h) {
    overlay.register_app("t", h,
                         [&delivered](const ObjectId&, const Bytes&,
                                      const overlay::RouteInfo&) { ++delivered; });
  }
  Rng rng(9);
  overlay.route(3, rng.uid(), "t", Bytes{});
  sched.run_for(duration::seconds(5));  // run(): maintenance never drains
  EXPECT_EQ(delivered, 1);
}

TEST(Chaos, StorageHealingRepairsThroughLossyLinks) {
  // Replica repair rides the "store.r" reliable transport: healing
  // pushes recreate lost copies even when every link drops 20% of
  // packets, and the repaired replica count converges to the target.
  sim::Scheduler sched;
  auto topo = std::make_shared<sim::UniformTopology>(16, duration::millis(10));
  sim::Network net(sched, topo);
  overlay::OverlayNetwork::Params op;
  op.maintenance_period = 0;
  overlay::OverlayNetwork overlay(net, op);
  std::vector<sim::HostId> hosts;
  for (sim::HostId h = 0; h < 16; ++h) hosts.push_back(h);
  overlay.build_ring(hosts);

  storage::ObjectStore::Params p;
  p.replicas = 5;
  p.healing_period = duration::seconds(5);
  p.reliable_repair = true;
  p.reliable = chaos_reliable_params();
  storage::ObjectStore store(net, overlay, p);

  const ObjectId id = store.put(0, Bytes{'p', 'r', 'e', 'c', 'i', 'o', 'u', 's'});
  sched.run_for(duration::seconds(2));
  ASSERT_EQ(store.live_replicas(id), 5);

  net.set_link_faults({.drop = 0.20, .duplicate = 0.05, .seed = 0xC4A05});

  const auto root = overlay.true_root(id);
  sim::ChurnInjector churn(net, {});
  int killed = 0;
  for (sim::HostId h = 0; h < 16 && killed < 2; ++h) {
    if (h != root.host && store.node(h)->replica(id) != nullptr && net.host_up(h)) {
      churn.kill(h, false);
      ++killed;
    }
  }
  ASSERT_EQ(killed, 2);
  EXPECT_EQ(store.live_replicas(id), 3);

  sched.run_for(duration::seconds(30));  // several healing sweeps
  EXPECT_GE(store.live_replicas(id), 5);
  EXPECT_GT(store.stats().heal_pushes, 0u);
  EXPECT_GT(net.stats().retransmits, 0u);
}

// --- Crash-durable recovery: store node ---

// One store crash round: 10 content-addressed puts, a directed crash of
// a replica-holding host while journal flushes and repair pushes are
// still in flight, a rejoin with supervised recovery, then healing
// sweeps.  The fault-free oracle digest is the put payloads themselves
// (content addressing makes any corruption or loss visible at get()).
void store_crash_recover_round(storage::StoreTier tier, std::uint64_t seed) {
  SCOPED_TRACE("tier=" + std::string(storage::tier_name(tier)) +
               " seed=" + std::to_string(seed));
  sim::Scheduler sched;
  auto topo = std::make_shared<sim::UniformTopology>(16, duration::millis(10));
  sim::Network net(sched, topo);
  overlay::OverlayNetwork::Params op;
  op.maintenance_period = 0;
  overlay::OverlayNetwork overlay(net, op);
  std::vector<sim::HostId> hosts;
  for (sim::HostId h = 0; h < 16; ++h) hosts.push_back(h);
  overlay.build_ring(hosts);

  sim::DiskParams dp;
  dp.fsync_latency = duration::millis(20);  // slow enough to crash mid-flush
  dp.seed = seed * 1001 + 7;
  sim::DurableDisk disk(net, dp);

  storage::ObjectStore::Params p;
  p.replicas = 3;
  p.healing_period = duration::seconds(5);
  p.reliable_repair = true;
  p.reliable = chaos_reliable_params();
  p.tier = tier;
  p.checkpoint_every = 4;
  p.disk = &disk;
  storage::ObjectStore store(net, overlay, p);
  sim::ChurnInjector churn(net, {});
  store.attach_churn(churn);

  std::map<ObjectId, Bytes> oracle;
  std::vector<ObjectId> ids;
  for (int i = 0; i < 10; ++i) {
    Bytes data(100 + 13 * static_cast<std::size_t>(i));
    for (std::size_t b = 0; b < data.size(); ++b) {
      data[b] = static_cast<std::uint8_t>(seed * 17 + static_cast<std::uint64_t>(i) + b);
    }
    const ObjectId id = Uid160(Sha1::hash(data));
    oracle[id] = data;
    ids.push_back(id);
    const sim::HostId from = static_cast<sim::HostId>(i);
    sched.after(duration::millis(5) * (i + 1), [&store, from, data] {
      store.put(from, data);
    });
  }

  // Mid-run crash: pick (at crash time) a live host that holds a
  // replica of the first object but roots none of the oracle objects,
  // so root-driven healing can refill it after rejoin in every tier.
  sim::HostId victim = sim::kNoHost;
  sched.after(duration::millis(120), [&] {
    const auto root = overlay.true_root(ids[0]);
    for (sim::HostId h : hosts) {
      if (h == root.host || !net.host_up(h)) continue;
      if (store.node(h)->replica(ids[0]) == nullptr) continue;
      bool roots_any = false;
      for (const ObjectId& id : ids) {
        overlay::OverlayNode* n = overlay.node_at(h);
        if (n == nullptr || !n->next_hop(id).has_value()) {
          roots_any = true;
          break;
        }
      }
      if (roots_any) continue;
      victim = h;
      break;
    }
    ASSERT_NE(victim, sim::kNoHost) << "no replica holder free of root duty";
    churn.kill(victim, /*graceful=*/false);
    sched.after(duration::millis(400), [&churn, &victim] { churn.revive(victim); });
    // Right after the rejoin (recovery hook has run, first healing
    // sweep has not): persistent tiers restored replicas from disk,
    // the volatile tier came back empty.
    sched.after(duration::millis(401), [&store, &victim, tier] {
      const std::size_t restored = store.node(victim)->replica_ids().size();
      if (tier == storage::StoreTier::kVolatile) {
        EXPECT_EQ(restored, 0u);
      } else {
        EXPECT_GT(restored, 0u);
      }
    });
  });

  sched.run_for(duration::seconds(30));  // several healing sweeps

  // Digest convergence: every object retrievable with oracle bytes.
  std::size_t correct = 0;
  for (const auto& [id, data] : oracle) {
    const Bytes& expected = data;
    store.get(1, id, [&correct, &expected](Result<Bytes> r) {
      if (r.is_ok() && r.value() == expected) ++correct;
    });
  }
  sched.run_for(duration::seconds(15));
  EXPECT_EQ(correct, oracle.size());
  EXPECT_GE(store.live_replicas(ids[0]), p.replicas);

  const storage::DurabilityStats dur = store.durability_stats();
  if (tier == storage::StoreTier::kVolatile) {
    EXPECT_EQ(dur.recoveries, 0u);  // no journals exist at all
  } else {
    EXPECT_GE(dur.recoveries, 1u);
    EXPECT_GT(dur.write_amplification(), 0.0);
  }
  if (tier == storage::StoreTier::kLogged) EXPECT_GT(dur.wal_appends, 0u);
  if (tier == storage::StoreTier::kPersistent) EXPECT_GT(dur.checkpoints, 0u);
}

TEST(Chaos, StoreNodeCrashRecoverConvergesInAllTiers) {
  for (std::uint64_t seed = 1; seed <= 7; ++seed) {
    store_crash_recover_round(storage::StoreTier::kVolatile, seed);
    store_crash_recover_round(storage::StoreTier::kPersistent, seed);
    store_crash_recover_round(storage::StoreTier::kLogged, seed);
  }
}

// --- Crash-durable recovery: broker ---

struct BrokerCrashResult {
  Digest digest;
  std::uint64_t deliveries = 0;
  pubsub::BrokerStats broker;
  std::uint64_t incarnation_give_ups = 0;
  std::size_t stalled_left = 0;
};

// Brokers 0-1-2 in a chain; clients 3..5 hang off broker 0 and 6..8 off
// broker 2, so every cross-group delivery crosses broker 1 — the crash
// victim.  `crash_at` == 0 runs the fault-free oracle.
BrokerCrashResult run_broker_crash_scenario(SimDuration crash_at, SimDuration revive_at,
                                            std::uint64_t seed,
                                            bool checkpoints_before_transport = false,
                                            unsigned threads = 1) {
  BrokerCrashResult result;
  sim::Scheduler sched;
  auto topo = std::make_shared<sim::UniformTopology>(9, duration::millis(5));
  sim::Network net(sched, topo);
  if (threads > 1) net.set_threads(threads);
  SienaNetwork ps(net, {0, 1, 2});
  (void)ps.connect(0, 1);
  (void)ps.connect(1, 2);
  sim::DiskParams dp;
  dp.fsync_latency = duration::millis(5);  // checkpoints can crash mid-flush
  dp.seed = seed * 7 + 3;
  sim::DurableDisk disk(net, dp);
  // Both enable orders must behave identically (give-up parking hooks
  // in regardless of which feature comes up first).
  if (checkpoints_before_transport) {
    ps.enable_broker_checkpoints(disk);
    ps.enable_reliable_transport(chaos_reliable_params());
  } else {
    ps.enable_reliable_transport(chaos_reliable_params());
    ps.enable_broker_checkpoints(disk);
  }
  sim::ChurnInjector churn(net, {});
  ps.attach_churn(churn);

  Digest& digest = result.digest;
  for (sim::HostId h = 3; h <= 8; ++h) {
    digest[h];  // pre-create: shard-thread handlers must not grow the tree
    ps.attach_client(h, h <= 5 ? 0 : 2);
    sched.after(duration::millis(3) * (h - 2), [&ps, &digest, h] {
      ps.subscribe(h, Filter().where("type", Op::kEq, "t" + std::to_string(h % 3)),
                   [&digest, h](const Event& e) {
                     digest[h].push_back(e.get_string("key").value_or("?"));
                   });
    });
  }
  if (crash_at > 0) {
    sched.after(crash_at, [&churn] { churn.kill(1, /*graceful=*/false); });
    sched.after(revive_at, [&churn] { churn.revive(1); });
  }
  // 6 publishers x 20 rounds from 800 ms on; each event's type matches
  // exactly two subscribers (one in each group).
  for (int r = 0; r < 20; ++r) {
    for (sim::HostId pub = 3; pub <= 8; ++pub) {
      const SimDuration when =
          duration::millis(800) +
          duration::millis(5) * static_cast<SimDuration>(r * 6 + static_cast<int>(pub) - 3);
      sched.after(when, [&ps, pub, r] {
        Event e("t" + std::to_string((static_cast<int>(pub) + r) % 3));
        e.set("key", "p" + std::to_string(pub) + "r" + std::to_string(r));
        ps.publish(pub, e);
      });
    }
  }
  sched.run();

  for (const auto& [h, keys] : digest) result.deliveries += keys.size();
  for (auto& [h, keys] : digest) std::sort(keys.begin(), keys.end());
  result.broker = ps.total_broker_stats();
  result.incarnation_give_ups = ps.reliable_transport()->stats().incarnation_give_ups;
  result.stalled_left = ps.stalled_packets();
  return result;
}

TEST(Chaos, BrokerCrashMidPublishConvergesToOracleDigest) {
  const BrokerCrashResult oracle = run_broker_crash_scenario(0, 0, 1);
  // 120 events, each matching exactly 2 subscriptions.
  ASSERT_EQ(oracle.deliveries, 240u);
  ASSERT_EQ(oracle.broker.recoveries, 0u);

  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    // Crash lands mid-flight of a publish wave crossing broker 1.
    const BrokerCrashResult crash = run_broker_crash_scenario(
        duration::millis(1002) + duration::micros(337), duration::millis(1352), seed);
    EXPECT_EQ(crash.digest, oracle.digest) << "seed " << seed;
    EXPECT_GE(crash.broker.recoveries, 1u);
    EXPECT_GE(crash.broker.sync_requests, 2u);  // one per neighbour
    EXPECT_GE(crash.broker.sync_replies, 1u);
    // In-flight publications at the crash were given up on promptly,
    // parked, and flushed into the recovered broker.
    EXPECT_GT(crash.incarnation_give_ups, 0u) << "seed " << seed;
    EXPECT_EQ(crash.stalled_left, 0u);
  }
}

TEST(Chaos, BrokerCheckpointsEnabledBeforeTransportStillParkGiveUps) {
  // enable_broker_checkpoints before enable_reliable_transport: the
  // transport's give-up hook must still be installed, or traffic to the
  // crashed broker is dropped instead of parked and re-flushed.
  const BrokerCrashResult oracle = run_broker_crash_scenario(0, 0, 1);
  const BrokerCrashResult crash = run_broker_crash_scenario(
      duration::millis(1002) + duration::micros(337), duration::millis(1352), 1,
      /*checkpoints_before_transport=*/true);
  EXPECT_EQ(crash.digest, oracle.digest);
  EXPECT_GT(crash.incarnation_give_ups, 0u);
  EXPECT_EQ(crash.stalled_left, 0u);
}

TEST(Chaos, BrokerRecoverySyncTearsDownStaleDownstreamRoutes) {
  // Client 3 (broker 0) subscribes; the route reaches broker 2.  While
  // broker 1 is down, the client unsubscribes — the teardown dies at
  // the dead broker.  Recovery sync with broker 0 reveals the entry is
  // stale; broker 1 must then propagate the unsubscribe downstream, or
  // broker 2 forwards matching publishes at a dangling route forever.
  sim::Scheduler sched;
  auto topo = std::make_shared<sim::UniformTopology>(9, duration::millis(5));
  sim::Network net(sched, topo);
  SienaNetwork ps(net, {0, 1, 2});
  (void)ps.connect(0, 1);
  (void)ps.connect(1, 2);
  sim::DurableDisk disk(net);
  ps.enable_broker_checkpoints(disk);
  sim::ChurnInjector churn(net, {});
  ps.attach_churn(churn);
  ps.attach_client(3, 0);
  ps.attach_client(6, 2);

  int delivered = 0;
  const std::uint64_t sub = ps.subscribe(
      3, Filter().where("type", Op::kEq, "t"), [&](const Event&) { ++delivered; });
  sched.run();
  ps.publish(6, Event("t"));  // positive control: the route works
  sched.run();
  ASSERT_EQ(delivered, 1);

  churn.kill(1, /*graceful=*/false);
  sched.run();
  ps.unsubscribe(3, sub);  // teardown toward dead broker 1 is lost
  sched.run();
  churn.revive(1);  // recovery + peer sync with brokers 0 and 2
  sched.run();

  const std::uint64_t routed_before = ps.broker(1)->stats().publications_routed;
  ps.publish(6, Event("t"));
  sched.run();
  EXPECT_EQ(delivered, 1);  // the unsubscribe holds either way...
  // ...but broker 2 must have dropped the stale route, so nothing is
  // forwarded into broker 1 at all.
  EXPECT_EQ(ps.broker(1)->stats().publications_routed, routed_before);
}

TEST(Chaos, BrokerCrashDuringSubscriptionPropagationConverges) {
  // The nastier window: broker 1 dies while subscriptions are still
  // propagating and its own routing-state checkpoints are mid-flush.
  // Recovery must combine whatever checkpoint half survived with the
  // peer sync protocol and the flushed stalled traffic, and still end
  // up with routing state that delivers the exact oracle digest.
  const BrokerCrashResult oracle = run_broker_crash_scenario(0, 0, 1);
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const BrokerCrashResult crash = run_broker_crash_scenario(
        duration::millis(21) + duration::micros(113), duration::millis(400), seed);
    EXPECT_EQ(crash.digest, oracle.digest) << "seed " << seed;
    EXPECT_GE(crash.broker.recoveries, 1u);
    EXPECT_GE(crash.broker.checkpoints, 1u);
    EXPECT_EQ(crash.stalled_left, 0u);
  }
}

// --- Sharded parallel execution ---

TEST(Chaos, ParallelModeIsDeterministic) {
  // The tentpole determinism pin: the full 21-seed chaos sweep — link
  // faults, duplication, reordering, two partition windows, the reliable
  // transport papering over all of it — must produce bit-identical
  // delivery digests and metrics counters whether the scheduler runs
  // one shard or many.  Sequential results double as the oracle.
  for (std::uint64_t seed = 1; seed <= 21; ++seed) {
    const auto scenario = [seed](sim::Network& net, sim::Scheduler& sched) {
      install_chaos(seed, net, sched);
    };
    const ScenarioResult seq = run_scenario(/*reliable=*/true, scenario);
    ASSERT_GT(seq.dropped_by_fault, 0u) << "seed " << seed;
    for (unsigned threads : {2u, 4u}) {
      const ScenarioResult par =
          run_scenario(/*reliable=*/true, scenario, /*tracing=*/false, threads);
      EXPECT_EQ(par.digest, seq.digest) << "seed " << seed << " threads " << threads;
      EXPECT_EQ(par.give_ups, seq.give_ups) << "seed " << seed << " threads " << threads;
      EXPECT_EQ(net_stats_key(par.net_stats), net_stats_key(seq.net_stats))
          << "seed " << seed << " threads " << threads;
      EXPECT_EQ(broker_stats_key(par.broker), broker_stats_key(seq.broker))
          << "seed " << seed << " threads " << threads;
    }
  }
}

TEST(Chaos, ParallelBrokerCrashRecoveryMatchesSequential) {
  // The PR 6 crash→recover→converge path under sharded execution: a
  // broker dies mid-publish with checkpoints mid-flush, recovers from
  // disk + peer sync, and the run's digest and broker counters are
  // bit-identical to the sequential execution of the same seed.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const SimDuration crash_at = duration::millis(1002) + duration::micros(337);
    const SimDuration revive_at = duration::millis(1352);
    const BrokerCrashResult seq = run_broker_crash_scenario(crash_at, revive_at, seed);
    ASSERT_GE(seq.broker.recoveries, 1u) << "seed " << seed;
    for (unsigned threads : {2u, 4u}) {
      const BrokerCrashResult par = run_broker_crash_scenario(
          crash_at, revive_at, seed, /*checkpoints_before_transport=*/false, threads);
      EXPECT_EQ(par.digest, seq.digest) << "seed " << seed << " threads " << threads;
      EXPECT_EQ(par.deliveries, seq.deliveries) << "seed " << seed << " threads " << threads;
      EXPECT_EQ(par.incarnation_give_ups, seq.incarnation_give_ups)
          << "seed " << seed << " threads " << threads;
      EXPECT_EQ(par.stalled_left, seq.stalled_left)
          << "seed " << seed << " threads " << threads;
      EXPECT_EQ(broker_stats_key(par.broker), broker_stats_key(seq.broker))
          << "seed " << seed << " threads " << threads;
    }
  }
}

TEST(Chaos, TracedParallelSweepMatchesUntracedSequential) {
  // The shard-safe-tracing pin: with slot-local ambient contexts and
  // keyed sampling, enabling tracing no longer drops the scheduler to
  // one shard — and must stay pure observation at every shard count.
  // The full 21-seed chaos sweep runs traced at 1, 2 and 4 shards; each
  // run's digest and counters must be bit-identical to the *untraced
  // sequential* oracle, and the merged span set must be structurally
  // identical to the 1-shard trace (same multiset of span contents and
  // parent links; raw span ids encode the producing slot and may
  // differ).
  for (std::uint64_t seed = 1; seed <= 21; ++seed) {
    const auto scenario = [seed](sim::Network& net, sim::Scheduler& sched) {
      install_chaos(seed, net, sched);
    };
    const ScenarioResult oracle = run_scenario(/*reliable=*/true, scenario);
    ASSERT_GT(oracle.dropped_by_fault, 0u) << "seed " << seed;
    std::multiset<std::string> one_shard_spans;
    for (unsigned threads : {1u, 2u, 4u}) {
      const ScenarioResult traced =
          run_scenario(/*reliable=*/true, scenario, /*tracing=*/true, threads);
      EXPECT_EQ(traced.digest, oracle.digest) << "seed " << seed << " threads " << threads;
      EXPECT_EQ(traced.give_ups, oracle.give_ups)
          << "seed " << seed << " threads " << threads;
      EXPECT_EQ(net_stats_key(traced.net_stats), net_stats_key(oracle.net_stats))
          << "seed " << seed << " threads " << threads;
      EXPECT_EQ(broker_stats_key(traced.broker), broker_stats_key(oracle.broker))
          << "seed " << seed << " threads " << threads;
      EXPECT_EQ(traced.deliver_spans, traced.deliveries)
          << "seed " << seed << " threads " << threads;
      if (threads == 1) {
        one_shard_spans = traced.span_multiset;
        ASSERT_FALSE(one_shard_spans.empty()) << "seed " << seed;
      } else {
        EXPECT_EQ(traced.span_multiset, one_shard_spans)
            << "seed " << seed << " threads " << threads;
      }
    }
  }
}

TEST(Chaos, ParallelTraceExportValidates) {
  // A traced + profiled 4-shard chaos run must export Chrome/Perfetto
  // JSON that passes every validator check: span structure from the
  // merged trace and counter tracks (numeric values, non-decreasing
  // per-track timestamps, named threads) from the profiler.
  const ScenarioResult traced = run_scenario(
      /*reliable=*/true,
      [](sim::Network& net, sim::Scheduler& sched) { install_chaos(5, net, sched); },
      /*tracing=*/true, /*threads=*/4, /*profiling=*/true);
  ASSERT_FALSE(traced.chrome_export.empty());
  std::istringstream in(traced.chrome_export);
  const auto problems = obs::validate_chrome_trace(in);
  EXPECT_TRUE(problems.empty()) << (problems.empty() ? "" : problems.front());
}

TEST(Chaos, ProfilingIsPureObservation) {
  // The profiler reads wall clocks and bumps slot-local counters but
  // never touches scheduling decisions: digests and counters with
  // profiling on are bit-identical to the plain run, sequential and
  // sharded alike.
  const auto scenario = [](sim::Network& net, sim::Scheduler& sched) {
    install_chaos(7, net, sched);
  };
  const ScenarioResult off = run_scenario(/*reliable=*/true, scenario);
  for (unsigned threads : {1u, 4u}) {
    const ScenarioResult on = run_scenario(/*reliable=*/true, scenario,
                                           /*tracing=*/false, threads, /*profiling=*/true);
    EXPECT_EQ(on.digest, off.digest) << "threads " << threads;
    EXPECT_EQ(net_stats_key(on.net_stats), net_stats_key(off.net_stats))
        << "threads " << threads;
    EXPECT_EQ(broker_stats_key(on.broker), broker_stats_key(off.broker))
        << "threads " << threads;
  }
}

}  // namespace
}  // namespace aa
