// Integration tests through the ActiveArchitecture facade: the full
// stack — sensors/devices publishing onto the event bus, services
// deployed as matchlet bundles by the evolution engine, knowledge-base
// correlation, storage, and end-user delivery.
#include <gtest/gtest.h>

#include "event/filter_parser.hpp"
#include "gloss/active_architecture.hpp"
#include "sim/churn.hpp"

namespace aa::gloss {
namespace {

using event::Event;
using event::Filter;
using event::Op;

Filter f(const std::string& text) {
  auto r = event::parse_filter(text);
  EXPECT_TRUE(r.is_ok()) << text;
  return r.value_or(Filter());
}

ActiveArchitecture::Config small_config() {
  ActiveArchitecture::Config c;
  c.hosts = 16;
  c.regions = 4;
  c.brokers = 4;
  c.settle_time = duration::seconds(20);
  return c;
}

match::Rule hot_rule() {
  match::Rule rule;
  rule.name = "hot-alert";
  match::TriggerPattern t;
  t.alias = "temp";
  auto filt = event::parse_filter("type = temperature and celsius > 25");
  t.filter = filt.value();
  t.window = duration::minutes(5);
  rule.triggers.push_back(std::move(t));
  rule.emit.type = "heat-warning";
  rule.emit.sets.push_back(
      match::Assignment{"celsius", std::nullopt, "temp", "celsius"});
  return rule;
}

TEST(Gloss, ConstructsFullStack) {
  ActiveArchitecture arch(small_config());
  EXPECT_EQ(arch.overlay().node_hosts().size(), 16u);
  EXPECT_EQ(arch.bus().broker_hosts().size(), 4u);
  EXPECT_TRUE(arch.runtime().server_running(7));
  EXPECT_FALSE(arch.region_of(3).empty());
  // Every region is populated.
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(arch.hosts_in_region("r" + std::to_string(r)).size(), 4u);
  }
}

TEST(Gloss, CodecAndBatchingKnobsReachTheBus) {
  // The facade knobs must actually change the wire path: binary +
  // batching yields fewer bytes and coalesced frames for the same
  // delivered events.
  auto run = [](const std::string& codec, std::int64_t batch_window_us) {
    auto cfg = small_config();
    cfg.codec = codec;
    cfg.batch_window_us = batch_window_us;
    ActiveArchitecture arch(cfg);
    int delivered = 0;
    arch.subscribe_user(10, f("type = tick"), [&](const Event&) { ++delivered; });
    arch.run_for(duration::seconds(5));
    arch.network().reset_stats();
    for (int i = 0; i < 20; ++i) {
      Event e("tick");
      e.set("n", i);
      arch.publish(12, e);
    }
    arch.run_for(duration::seconds(10));
    return std::make_pair(delivered, arch.metrics_snapshot());
  };

  const auto [xml_delivered, xml_metrics] = run("xml", -1);
  const auto [bin_delivered, bin_metrics] = run("binary", 0);
  EXPECT_EQ(xml_delivered, 20);
  EXPECT_EQ(bin_delivered, 20);
  EXPECT_LT(bin_metrics.counter("net.bytes_sent"), xml_metrics.counter("net.bytes_sent"));
  EXPECT_EQ(xml_metrics.counter("net.batch.frames"), 0u);
  EXPECT_GT(bin_metrics.counter("net.batch.frames"), 0u);
  EXPECT_LT(bin_metrics.counter("net.packets_sent"),
            bin_metrics.counter("net.messages_sent"));
}

TEST(Gloss, ServiceDeploysViaEvolutionAndMatches) {
  ActiveArchitecture arch(small_config());
  ServiceSpec spec;
  spec.name = "heat-watch";
  spec.input = f("type = temperature");
  spec.rules = {hot_rule()};
  spec.min_instances = 1;
  const std::string constraint_id = arch.deploy_service(spec);
  arch.run_for(duration::seconds(30));
  ASSERT_TRUE(arch.evolution().satisfied(constraint_id));

  // An end-user device subscribes to the service's output.
  std::vector<Event> warnings;
  arch.subscribe_user(10, f("type = heat-warning"),
                      [&](const Event& e) { warnings.push_back(e); });
  arch.run_for(duration::seconds(5));

  Event temp("temperature");
  temp.set("celsius", 31.0);
  arch.publish(12, temp);
  arch.run_for(duration::seconds(10));

  ASSERT_GE(warnings.size(), 1u);
  EXPECT_DOUBLE_EQ(warnings[0].get_real("celsius").value(), 31.0);

  Event mild("temperature");
  mild.set("celsius", 15.0);
  const auto before = warnings.size();
  arch.publish(12, mild);
  arch.run_for(duration::seconds(10));
  EXPECT_EQ(warnings.size(), before);  // below threshold: no warning
}

TEST(Gloss, ServiceUsesKnowledgeBase) {
  ActiveArchitecture arch(small_config());
  match::Fact pref;
  pref.set("kind", "preference").set("user", "bob").set("min_celsius", 18.0);
  arch.add_fact(pref);

  match::Rule rule;
  rule.name = "bob-likes-heat";
  match::TriggerPattern t;
  t.alias = "temp";
  t.filter = f("type = temperature");
  t.window = duration::minutes(5);
  rule.triggers.push_back(std::move(t));
  match::FactPattern fp;
  fp.alias = "pref";
  fp.filter = f("kind = preference and user = bob");
  rule.facts.push_back(std::move(fp));
  rule.joins.push_back(match::JoinCondition{match::Operand::ref("temp", "celsius"),
                                            Op::kGe,
                                            match::Operand::ref("pref", "min_celsius")});
  rule.emit.type = "bob-alert";
  rule.emit.sets.push_back(match::Assignment{"user", std::nullopt, "pref", "user"});

  ServiceSpec spec;
  spec.name = "bob-service";
  spec.input = f("type = temperature");
  spec.rules = {rule};
  arch.deploy_service(spec);
  arch.run_for(duration::seconds(30));

  std::vector<Event> alerts;
  arch.subscribe_user(9, f("type = bob-alert"), [&](const Event& e) { alerts.push_back(e); });
  arch.run_for(duration::seconds(5));

  Event warm("temperature");
  warm.set("celsius", 20.0);
  arch.publish(3, warm);
  arch.run_for(duration::seconds(10));
  ASSERT_GE(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].get_string("user").value(), "bob");
}

TEST(Gloss, RegionalServicePlacement) {
  ActiveArchitecture arch(small_config());
  ServiceSpec spec;
  spec.name = "regional";
  spec.input = f("type = temperature");
  spec.rules = {hot_rule()};
  spec.min_instances = 2;
  spec.region = "r1";
  const auto cid = arch.deploy_service(spec);
  arch.run_for(duration::seconds(30));
  ASSERT_TRUE(arch.evolution().satisfied(cid));
  // Instances only on r1 hosts.
  int in_r1 = 0, elsewhere = 0;
  for (sim::HostId h = 0; h < 16; ++h) {
    const auto names = arch.runtime().installed_names(h);
    if (names.empty()) continue;
    if (arch.region_of(h) == "r1") {
      in_r1 += static_cast<int>(names.size());
    } else {
      elsewhere += static_cast<int>(names.size());
    }
  }
  EXPECT_EQ(in_r1, 2);
  EXPECT_EQ(elsewhere, 0);
}

TEST(Gloss, ServiceSurvivesInstanceHostCrash) {
  ActiveArchitecture arch(small_config());
  ServiceSpec spec;
  spec.name = "resilient";
  spec.input = f("type = temperature");
  spec.rules = {hot_rule()};
  spec.min_instances = 1;
  const auto cid = arch.deploy_service(spec);
  arch.run_for(duration::seconds(30));
  ASSERT_TRUE(arch.evolution().satisfied(cid));

  // Find the instance host and crash it (not a broker and not the
  // evolution engine's host 0 so the control plane survives).
  sim::HostId victim = sim::kNoHost;
  for (sim::HostId h = 4; h < 16; ++h) {
    if (!arch.runtime().installed_names(h).empty()) {
      victim = h;
      break;
    }
  }
  if (victim == sim::kNoHost) GTEST_SKIP() << "instance landed on an infrastructure host";
  sim::ChurnInjector churn(arch.network(), {});
  churn.kill(victim, /*graceful=*/false);

  // The advert TTL ages the victim out of the resource view; the
  // control loop then redeploys elsewhere.  TTL is 5 virtual minutes.
  arch.run_for(duration::minutes(7));
  EXPECT_TRUE(arch.evolution().satisfied(cid));
}

TEST(Gloss, StorageIntegration) {
  ActiveArchitecture arch(small_config());
  Result<Bytes> got = Status(Code::kUnavailable, "pending");
  const ObjectId id = arch.store().put(2, to_bytes("profile of bob"));
  arch.run_for(duration::seconds(5));
  arch.store().get(11, id, [&](Result<Bytes> r) { got = std::move(r); });
  arch.run_for(duration::seconds(5));
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(to_string(got.value()), "profile of bob");
}

TEST(Gloss, DiscoveryDeploysHandlerForNovelEventType) {
  ActiveArchitecture arch(small_config());
  arch.start_discovery(2);

  // A handler for "pollen" events is published into the code directory
  // — but no service handles pollen yet.
  match::Rule rule;
  rule.name = "pollen-alert";
  match::TriggerPattern t;
  t.alias = "p";
  t.filter = f("type = pollen and level > 5");
  t.window = duration::minutes(5);
  rule.triggers.push_back(std::move(t));
  rule.emit.type = "pollen-warning";
  rule.emit.sets.push_back(match::Assignment{"level", std::nullopt, "p", "level"});
  arch.publish_handler("pollen", {rule});
  arch.run_for(duration::seconds(10));

  std::vector<Event> warnings;
  arch.subscribe_user(11, f("type = pollen-warning"),
                      [&](const Event& e) { warnings.push_back(e); });
  arch.run_for(duration::seconds(5));

  // First pollen event: unknown type; triggers fetch + deploy.
  Event pollen("pollen");
  pollen.set("level", 9);
  arch.publish(7, pollen);
  arch.run_for(duration::seconds(30));
  ASSERT_NE(arch.discovery(), nullptr);
  EXPECT_EQ(arch.discovery()->stats().handlers_deployed, 1u);

  // Subsequent pollen events flow through the auto-deployed handler.
  arch.publish(7, pollen);
  arch.run_for(duration::seconds(30));
  ASSERT_GE(warnings.size(), 1u);
  EXPECT_EQ(warnings[0].get_int("level").value(), 9);

  // Low levels filtered by the handler's rule.
  Event mild("pollen");
  mild.set("level", 2);
  const auto before = warnings.size();
  arch.publish(7, mild);
  arch.run_for(duration::seconds(20));
  EXPECT_EQ(warnings.size(), before);
}

TEST(Gloss, DiscoveryIgnoresInfrastructureTypes) {
  ActiveArchitecture arch(small_config());
  arch.start_discovery(2);
  arch.run_for(duration::minutes(2));  // adverts + fact updates flow
  // No lookups for infrastructure event classes.
  EXPECT_EQ(arch.discovery()->stats().lookups, 0u);
  match::Fact fact;
  fact.set("kind", "x");
  arch.add_fact(fact);
  arch.run_for(duration::seconds(10));
  EXPECT_EQ(arch.discovery()->stats().lookups, 0u);
}

TEST(Gloss, PublishStampsVirtualTime) {
  ActiveArchitecture arch(small_config());
  std::vector<Event> seen;
  arch.subscribe_user(5, f("type = ping"), [&](const Event& e) { seen.push_back(e); });
  arch.run_for(duration::seconds(2));
  const SimTime before = arch.scheduler().now();
  arch.publish(6, Event("ping"));
  arch.run_for(duration::seconds(5));
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_GE(seen[0].time(), before);
}

}  // namespace
}  // namespace aa::gloss
