// Tests for the event model: attribute values, XML encoding, filters,
// the covering relation (property-tested for soundness), overlap, and
// the subscription-language parser.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/hash.hpp"
#include "common/ids.hpp"
#include "common/rng.hpp"
#include "event/event.hpp"
#include "event/filter.hpp"
#include "event/filter_index.hpp"
#include "event/filter_parser.hpp"

namespace aa::event {
namespace {

// --- AttrValue ---

TEST(AttrValue, TypesAndAccessors) {
  EXPECT_TRUE(AttrValue("s").is_string());
  EXPECT_TRUE(AttrValue(3).is_int());
  EXPECT_TRUE(AttrValue(3.5).is_real());
  EXPECT_TRUE(AttrValue(true).is_bool());
  EXPECT_TRUE(AttrValue(3).is_numeric());
  EXPECT_DOUBLE_EQ(AttrValue(3).as_real(), 3.0);
}

TEST(AttrValue, TextRoundTrip) {
  for (const AttrValue v :
       {AttrValue("hello"), AttrValue(-42), AttrValue(3.25), AttrValue(true)}) {
    auto back = AttrValue::from_text(v.type(), v.to_text());
    ASSERT_TRUE(back.is_ok());
    EXPECT_EQ(back.value(), v);
  }
}

TEST(AttrValue, FromTextRejectsGarbage) {
  EXPECT_FALSE(AttrValue::from_text(ValueType::kInt, "12x").is_ok());
  EXPECT_FALSE(AttrValue::from_text(ValueType::kReal, "").is_ok());
  EXPECT_FALSE(AttrValue::from_text(ValueType::kBool, "maybe").is_ok());
}

TEST(AttrValue, CompareAcrossNumericTypes) {
  EXPECT_EQ(AttrValue(3).compare(AttrValue(3.0)).value(), 0);
  EXPECT_EQ(AttrValue(2).compare(AttrValue(2.5)).value(), -1);
  EXPECT_FALSE(AttrValue(3).compare(AttrValue("3")).has_value());
}

// --- Event ---

TEST(Event, TypedAccessors) {
  Event e("temperature");
  e.set("celsius", 21.5).set("sensor", "s1").set_time(12345);
  EXPECT_EQ(e.type(), "temperature");
  EXPECT_DOUBLE_EQ(e.get_real("celsius").value(), 21.5);
  EXPECT_EQ(e.get_string("sensor").value(), "s1");
  EXPECT_EQ(e.time(), 12345);
  EXPECT_FALSE(e.get_int("celsius").has_value());  // real, not int
  EXPECT_FALSE(e.get_real("sensor").has_value());
}

TEST(Event, XmlRoundTrip) {
  Event e("user-location");
  e.set("user", "bob").set("lat", 56.3397).set("lon", -2.80753).set("indoors", false).set(
      "floor", 2);
  auto back = Event::parse(e.to_xml_string());
  ASSERT_TRUE(back.is_ok()) << back.status().to_string();
  EXPECT_EQ(back.value(), e);
}

TEST(Event, FromXmlRejectsWrongRoot) {
  EXPECT_FALSE(Event::parse("<notevent/>").is_ok());
}

TEST(Event, FromXmlRejectsBadAttr) {
  EXPECT_FALSE(Event::parse(R"(<event><attr name="x" type="int" value="nope"/></event>)").is_ok());
  EXPECT_FALSE(Event::parse(R"(<event><attr name="x" type="widget" value="1"/></event>)").is_ok());
  EXPECT_FALSE(Event::parse(R"(<event><attr name="x"/></event>)").is_ok());
}

TEST(Event, WireSizePositiveAndGrows) {
  Event small("t");
  Event big("t");
  for (int i = 0; i < 20; ++i) big.set("attr" + std::to_string(i), i);
  EXPECT_GT(small.wire_size(), 0u);
  EXPECT_GT(big.wire_size(), small.wire_size());
}

// --- Copy-on-write payload sharing ---

// Random event over a wider universe than the covering tests below:
// every value type, 0..8 attributes, random insertion order.
Event random_cow_event(Rng& rng) {
  Event e;
  const int n = static_cast<int>(rng.below(9));
  for (int i = 0; i < n; ++i) {
    const std::string name = "a" + std::to_string(rng.below(12));
    switch (rng.below(4)) {
      case 0: e.set(name, AttrValue("v" + std::to_string(rng.below(50)))); break;
      case 1: e.set(name, AttrValue(static_cast<std::int64_t>(rng.range(-100, 100)))); break;
      case 2: e.set(name, AttrValue(rng.uniform(-4.0, 4.0))); break;
      default: e.set(name, AttrValue(rng.chance(0.5))); break;
    }
  }
  if (rng.chance(0.5)) e.set_type("t" + std::to_string(rng.below(4)));
  return e;
}

TEST(EventCow, CopiesSharePayloadUntilMutation) {
  Event a("temperature");
  a.set("celsius", 21.5);
  Event b = a;
  EXPECT_TRUE(a.shares_payload_with(b));
  b.set("celsius", 22.0);  // clone point
  EXPECT_FALSE(a.shares_payload_with(b));
  EXPECT_DOUBLE_EQ(a.get_real("celsius").value(), 21.5);
  EXPECT_DOUBLE_EQ(b.get_real("celsius").value(), 22.0);
}

TEST(EventCow, TraceStampRidesHandleNotPayload) {
  Event a("t");
  a.set("key", "k");
  const std::string wire_before = a.to_xml_string();
  Event b = a;
  b.set_trace(42, 7);
  // Stamping neither clones the payload nor perturbs identity or bytes.
  EXPECT_TRUE(a.shares_payload_with(b));
  EXPECT_EQ(a, b);
  EXPECT_EQ(b.to_xml_string(), wire_before);
  EXPECT_EQ(b.trace_id(), 42u);
  EXPECT_EQ(b.trace_span(), 7u);
  EXPECT_EQ(a.trace_id(), 0u);
}

TEST(EventCow, RandomizedAliasingNeverLeaksMutations) {
  Rng rng(2026);
  for (int trial = 0; trial < 200; ++trial) {
    Event original = random_cow_event(rng);
    const std::string frozen = original.to_xml_string();
    std::vector<Event> copies(1 + rng.below(4), original);
    for (Event& c : copies) {
      const int edits = 1 + static_cast<int>(rng.below(3));
      for (int i = 0; i < edits; ++i) {
        c.set("m" + std::to_string(rng.below(4)),
              AttrValue(static_cast<std::int64_t>(rng.below(100))));
      }
      EXPECT_FALSE(c.shares_payload_with(original));
    }
    EXPECT_EQ(original.to_xml_string(), frozen)
        << "a mutated copy leaked into its source (trial " << trial << ")";
  }
}

// --- Wire-size caching and serialisation counting ---

TEST(EventWire, OneSerializationPerEventNotPerSend) {
  Event e("t");
  e.set("key", "value");
  const std::uint64_t before = Event::serializations();
  const std::size_t size = e.wire_size();
  // Fan-out: shared handles reuse the cached rendering — repeated
  // wire_size() calls across eight copies cost zero further renders.
  for (int i = 0; i < 8; ++i) {
    Event hop = e;
    hop.set_trace(1, static_cast<std::uint64_t>(i));  // stamping must not invalidate
    EXPECT_EQ(hop.wire_size(), size);
  }
  EXPECT_EQ(e.wire_size(), size);
  EXPECT_EQ(Event::serializations() - before, 1u);

  // Mutation invalidates: exactly one re-render, not one per reader.
  e.set("key", "other");
  const std::size_t resized = e.wire_size();
  e.wire_size();
  EXPECT_EQ(Event::serializations() - before, 2u);
  EXPECT_NE(resized, 0u);
}

// Golden pin: the COW/interned representation must keep the XML wire
// form byte-identical to the original std::map-based one.  The digest
// below was captured from the pre-refactor code over 32 events covering
// every value type and both insertion orders.
TEST(EventWire, GoldenXmlBytesPinned) {
  std::string all;
  for (int i = 0; i < 32; ++i) {
    Event e;
    if (i % 2 == 0) {
      e.set("type", "t" + std::to_string(i % 4));
      e.set("user", "user" + std::to_string(i));
      e.set("celsius", 17.25 + i);
      e.set("floor", i);
      e.set("indoors", i % 3 == 0);
    } else {
      e.set("indoors", i % 3 == 0);
      e.set("floor", i);
      e.set("celsius", 17.25 + i);
      e.set("user", "user" + std::to_string(i));
      e.set("type", "t" + std::to_string(i % 4));
    }
    e.set_time(1000 * i);
    e.set_source("host-" + std::to_string(i % 8));
    all += e.to_xml_string();
    all += '\n';
    all += std::to_string(e.wire_size());
    all += '\n';
  }
  EXPECT_EQ(Uid160::from_content(all).to_hex(),
            "07a4799ded31cd11d8acbdbee0e8d2d71a49a3a8");
}

TEST(EventXml, RandomizedRoundTripPreservesEquality) {
  Rng rng(7771);
  for (int trial = 0; trial < 200; ++trial) {
    const Event e = random_cow_event(rng);
    auto back = Event::parse(e.to_xml_string());
    ASSERT_TRUE(back.is_ok()) << back.status().to_string();
    EXPECT_EQ(back.value(), e) << e.describe();
    EXPECT_EQ(back.value().to_xml_string(), e.to_xml_string());
  }
}

TEST(EventXml, CanonicalAcrossConstructionOrders) {
  Rng rng(4242);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<std::pair<std::string, AttrValue>> attrs;
    const int n = 1 + static_cast<int>(rng.below(7));
    for (int i = 0; i < n; ++i) {
      attrs.emplace_back("attr" + std::to_string(i),
                         AttrValue(static_cast<std::int64_t>(rng.below(1000))));
    }
    Event forward;
    for (const auto& [name, value] : attrs) forward.set(name, value);
    // Shuffle and rebuild: same attribute set, different insertion order.
    for (std::size_t i = attrs.size(); i > 1; --i) {
      std::swap(attrs[i - 1], attrs[rng.below(i)]);
    }
    Event shuffled;
    for (const auto& [name, value] : attrs) shuffled.set(name, value);
    EXPECT_EQ(forward, shuffled);
    EXPECT_EQ(forward.to_xml_string(), shuffled.to_xml_string());
    ASSERT_EQ(forward.attributes().size(), shuffled.attributes().size());
    for (std::size_t i = 0; i < forward.attributes().size(); ++i) {
      EXPECT_EQ(forward.attributes()[i].first, shuffled.attributes()[i].first);
    }
  }
}

// --- Filter matching ---

Event sample_event() {
  Event e("user-location");
  e.set("user", "bob").set("street", "North Street").set("celsius", 20.0).set("speed", 3);
  return e;
}

TEST(Filter, EmptyMatchesEverything) {
  EXPECT_TRUE(Filter().matches(sample_event()));
}

TEST(Filter, ConjunctionSemantics) {
  Filter f;
  f.where("user", Op::kEq, "bob").where("celsius", Op::kGt, 15.0);
  EXPECT_TRUE(f.matches(sample_event()));
  f.where("celsius", Op::kGt, 25.0);
  EXPECT_FALSE(f.matches(sample_event()));
}

TEST(Filter, MissingAttributeNeverMatches) {
  Filter f;
  f.where("ghost", Op::kExists);
  EXPECT_FALSE(f.matches(sample_event()));
}

TEST(Filter, StringOps) {
  const Event e = sample_event();
  EXPECT_TRUE(Filter().where("street", Op::kPrefix, "North").matches(e));
  EXPECT_TRUE(Filter().where("street", Op::kSuffix, "Street").matches(e));
  EXPECT_TRUE(Filter().where("street", Op::kSubstring, "th St").matches(e));
  EXPECT_FALSE(Filter().where("street", Op::kPrefix, "South").matches(e));
}

TEST(Filter, NumericWideningInComparisons) {
  const Event e = sample_event();  // speed is int 3
  EXPECT_TRUE(Filter().where("speed", Op::kLt, 3.5).matches(e));
  EXPECT_TRUE(Filter().where("celsius", Op::kGe, 20).matches(e));
}

TEST(Filter, TypeMismatchNeverMatches) {
  const Event e = sample_event();
  EXPECT_FALSE(Filter().where("user", Op::kGt, 5).matches(e));
  EXPECT_FALSE(Filter().where("user", Op::kNe, 5).matches(e));  // incomparable
}

// --- Covering: directed cases ---

TEST(Covering, EmptyFilterCoversAll) {
  Filter any;
  Filter narrow;
  narrow.where("a", Op::kEq, 1);
  EXPECT_TRUE(any.covers(narrow));
  EXPECT_FALSE(narrow.covers(any));
}

TEST(Covering, WiderRangeCoversNarrower) {
  Filter wide, narrow;
  wide.where("t", Op::kGt, 10.0);
  narrow.where("t", Op::kGt, 20.0);
  EXPECT_TRUE(wide.covers(narrow));
  EXPECT_FALSE(narrow.covers(wide));
}

TEST(Covering, EqualityCoveredByRange) {
  Filter range, point;
  range.where("t", Op::kGe, 10.0);
  point.where("t", Op::kEq, 15.0);
  EXPECT_TRUE(range.covers(point));
  EXPECT_FALSE(point.covers(range));
}

TEST(Covering, PrefixLattice) {
  Filter shorter, longer;
  shorter.where("s", Op::kPrefix, "ab");
  longer.where("s", Op::kPrefix, "abc");
  EXPECT_TRUE(shorter.covers(longer));
  EXPECT_FALSE(longer.covers(shorter));
}

TEST(Covering, ExistsCoversEverythingOnAttribute) {
  Filter exists, eq;
  exists.where("a", Op::kExists);
  eq.where("a", Op::kEq, "x");
  EXPECT_TRUE(exists.covers(eq));
  EXPECT_FALSE(eq.covers(exists));
}

TEST(Covering, ExtraConstraintsMakeNarrower) {
  Filter one, two;
  one.where("a", Op::kGt, 0);
  two.where("a", Op::kGt, 5).where("b", Op::kEq, "x");
  EXPECT_TRUE(one.covers(two));
  EXPECT_FALSE(two.covers(one));
}

// --- Covering: soundness property ---
// If F1.covers(F2) then every event matching F2 must match F1.
// Randomised over a small attribute/value universe so matches happen.

AttrValue random_value(Rng& rng) {
  switch (rng.below(4)) {
    case 0: return AttrValue(static_cast<std::int64_t>(rng.range(0, 9)));
    case 1: return AttrValue(static_cast<double>(rng.range(0, 9)) / 2.0);
    case 2: return AttrValue(std::string(1, static_cast<char>('a' + rng.below(4))) +
                             std::string(1, static_cast<char>('a' + rng.below(4))));
    default: return AttrValue(rng.chance(0.5));
  }
}

Filter random_filter(Rng& rng) {
  static const Op kOps[] = {Op::kEq, Op::kNe, Op::kLt, Op::kLe, Op::kGt,
                            Op::kGe, Op::kPrefix, Op::kSuffix, Op::kSubstring, Op::kExists};
  Filter f;
  const int n = 1 + static_cast<int>(rng.below(3));
  for (int i = 0; i < n; ++i) {
    f.where(std::string(1, static_cast<char>('p' + rng.below(3))), kOps[rng.below(10)],
            random_value(rng));
  }
  return f;
}

Event random_event(Rng& rng) {
  Event e;
  const int n = static_cast<int>(rng.below(5));
  for (int i = 0; i < n; ++i) {
    e.set(std::string(1, static_cast<char>('p' + rng.below(3))), random_value(rng));
  }
  return e;
}

class CoveringSoundness : public ::testing::TestWithParam<int> {};

TEST_P(CoveringSoundness, CoversImpliesSupersetOfMatches) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 977 + 13);
  for (int trial = 0; trial < 200; ++trial) {
    const Filter f1 = random_filter(rng);
    const Filter f2 = random_filter(rng);
    if (!f1.covers(f2)) continue;
    for (int k = 0; k < 50; ++k) {
      const Event e = random_event(rng);
      if (f2.matches(e)) {
        EXPECT_TRUE(f1.matches(e))
            << "violation: [" << f1.describe() << "] claims to cover [" << f2.describe()
            << "] but missed " << e.describe();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Random, CoveringSoundness, ::testing::Range(0, 10));

class OverlapSoundness : public ::testing::TestWithParam<int> {};

// overlaps() is conservative: it may say true when filters are disjoint,
// but must never say false when a common event exists.
TEST_P(OverlapSoundness, JointMatchImpliesOverlap) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 1553 + 7);
  for (int trial = 0; trial < 300; ++trial) {
    const Filter f1 = random_filter(rng);
    const Filter f2 = random_filter(rng);
    const Event e = random_event(rng);
    if (f1.matches(e) && f2.matches(e)) {
      EXPECT_TRUE(f1.overlaps(f2)) << "[" << f1.describe() << "] vs [" << f2.describe()
                                   << "] share " << e.describe();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Random, OverlapSoundness, ::testing::Range(0, 10));

TEST(Overlap, ProvablyDisjointDetected) {
  Filter cold, hot;
  cold.where("t", Op::kLt, 0.0);
  hot.where("t", Op::kGt, 30.0);
  EXPECT_FALSE(cold.overlaps(hot));

  Filter pa, pb;
  pa.where("s", Op::kPrefix, "aa");
  pb.where("s", Op::kPrefix, "bb");
  EXPECT_FALSE(pa.overlaps(pb));

  Filter eq1, eq2;
  eq1.where("x", Op::kEq, 1);
  eq2.where("x", Op::kEq, 2);
  EXPECT_FALSE(eq1.overlaps(eq2));
}

// --- Parser ---

TEST(FilterParser, FullLanguage) {
  auto f = parse_filter(
      R"(type = "temperature" and celsius > 20 and street prefix "North" and user exists)");
  ASSERT_TRUE(f.is_ok()) << f.status().to_string();
  ASSERT_EQ(f.value().constraints().size(), 4u);
  Event e("temperature");
  e.set("celsius", 25.0).set("street", "North Street").set("user", "bob");
  EXPECT_TRUE(f.value().matches(e));
  e.set("celsius", 15.0);
  EXPECT_FALSE(f.value().matches(e));
}

TEST(FilterParser, NumbersAndBooleans) {
  auto f = parse_filter("n = 5 and x >= -1.5 and flag = true");
  ASSERT_TRUE(f.is_ok());
  Event e;
  e.set("n", 5).set("x", 0.0).set("flag", true);
  EXPECT_TRUE(f.value().matches(e));
}

TEST(FilterParser, BarewordsAreStrings) {
  auto f = parse_filter("kind = icecream");
  ASSERT_TRUE(f.is_ok());
  Event e;
  e.set("kind", "icecream");
  EXPECT_TRUE(f.value().matches(e));
}

TEST(FilterParser, Errors) {
  EXPECT_FALSE(parse_filter("").is_ok());
  EXPECT_FALSE(parse_filter("a >").is_ok());
  EXPECT_FALSE(parse_filter("a = 1 and").is_ok());
  EXPECT_FALSE(parse_filter("a = 1 or b = 2").is_ok());  // no 'or' in language
  EXPECT_FALSE(parse_filter("= 5").is_ok());
  EXPECT_FALSE(parse_filter("a = \"unterminated").is_ok());
}

TEST(FilterParser, RoundTripThroughDescribe) {
  // describe() output is itself parseable for simple filters.
  Filter f;
  f.where("a", Op::kGt, 5).where("b", Op::kPrefix, "xy");
  auto back = parse_filter(f.describe());
  ASSERT_TRUE(back.is_ok()) << f.describe();
  EXPECT_EQ(back.value(), f);
}

// --- FilterIndex ---

std::vector<std::uint64_t> index_match(const FilterIndex& index, const Event& e) {
  std::vector<std::uint64_t> ids;
  index.match(e, ids);
  std::sort(ids.begin(), ids.end());
  return ids;
}

TEST(FilterIndex, MatchesEveryOperatorKind) {
  FilterIndex index;
  index.add(1, Filter().where("type", Op::kEq, "temp"));
  index.add(2, Filter().where("celsius", Op::kGt, 20.0));
  index.add(3, Filter().where("celsius", Op::kLe, 25));
  index.add(4, Filter().where("room", Op::kPrefix, "lab-"));
  index.add(5, Filter().where("room", Op::kSuffix, "-7"));
  index.add(6, Filter().where("room", Op::kSubstring, "ab"));
  index.add(7, Filter().where("type", Op::kNe, "humidity"));
  index.add(8, Filter().where("celsius", Op::kExists));
  index.add(9, Filter());  // empty filter matches everything

  Event e("temp");
  e.set("celsius", 22.5).set("room", "lab-7");
  EXPECT_EQ(index_match(index, e),
            (std::vector<std::uint64_t>{1, 2, 3, 4, 5, 6, 7, 8, 9}));

  Event cold("temp");
  cold.set("celsius", 10);
  EXPECT_EQ(index_match(index, cold), (std::vector<std::uint64_t>{1, 3, 7, 8, 9}));
}

TEST(FilterIndex, ConjunctionRequiresEveryConstraint) {
  FilterIndex index;
  index.add(1, Filter().where("type", Op::kEq, "temp").where("celsius", Op::kGt, 20.0));
  Event warm("temp");
  warm.set("celsius", 30.0);
  Event mistyped("humidity");
  mistyped.set("celsius", 30.0);
  Event cold("temp");
  cold.set("celsius", 10.0);
  EXPECT_EQ(index_match(index, warm), (std::vector<std::uint64_t>{1}));
  EXPECT_TRUE(index_match(index, mistyped).empty());
  EXPECT_TRUE(index_match(index, cold).empty());
}

TEST(FilterIndex, NumericEqualityWidensLikeCompare) {
  // int 3 and real 3.0 are equal under AttrValue::compare; the index
  // must reproduce that, in both directions.
  FilterIndex index;
  index.add(1, Filter().where("v", Op::kEq, 3));
  index.add(2, Filter().where("v", Op::kEq, 3.0));
  Event as_int;
  as_int.set("v", 3);
  Event as_real;
  as_real.set("v", 3.0);
  EXPECT_EQ(index_match(index, as_int), (std::vector<std::uint64_t>{1, 2}));
  EXPECT_EQ(index_match(index, as_real), (std::vector<std::uint64_t>{1, 2}));
}

TEST(FilterIndex, RemoveAndReAdd) {
  FilterIndex index;
  index.add(1, Filter().where("a", Op::kEq, 1));
  index.add(2, Filter().where("a", Op::kEq, 1));
  Event e;
  e.set("a", 1);
  EXPECT_EQ(index_match(index, e), (std::vector<std::uint64_t>{1, 2}));

  index.remove(1);
  EXPECT_EQ(index_match(index, e), (std::vector<std::uint64_t>{2}));
  EXPECT_FALSE(index.contains(1));

  // Re-adding an id replaces its previous filter.
  index.add(2, Filter().where("a", Op::kEq, 7));
  EXPECT_TRUE(index_match(index, e).empty());
  index.remove(2);
  index.remove(99);  // unknown id: no-op
  EXPECT_TRUE(index.empty());
}

TEST(FilterIndex, RandomizedAgreesWithLinearScanOracle) {
  // Property test: over generated filters and events covering every Op
  // kind and value type (reusing the covering-soundness generators,
  // whose small attribute/value pool forces collisions), the index
  // returns exactly the filters the linear-scan oracle accepts —
  // including empty filters and after random removals.
  Rng rng(41);
  for (int round = 0; round < 20; ++round) {
    FilterIndex index;
    std::vector<std::pair<std::uint64_t, Filter>> oracle;
    for (std::uint64_t id = 1; id <= 60; ++id) {
      Filter f = rng.chance(0.1) ? Filter() : random_filter(rng);
      index.add(id, f);
      oracle.emplace_back(id, std::move(f));
    }
    // Drop a random third to exercise unpost across every table kind.
    for (auto it = oracle.begin(); it != oracle.end();) {
      if (rng.chance(1.0 / 3.0)) {
        index.remove(it->first);
        it = oracle.erase(it);
      } else {
        ++it;
      }
    }
    for (int i = 0; i < 50; ++i) {
      const Event e = random_event(rng);
      std::vector<std::uint64_t> expected;
      for (const auto& [id, f] : oracle) {
        if (f.matches(e)) expected.push_back(id);
      }
      EXPECT_EQ(index_match(index, e), expected)
          << "event: " << e.describe() << " (round " << round << ")";
    }
  }
}

}  // namespace
}  // namespace aa::event
