// Tests for the negotiable wire codec layer (wire/codec.hpp): exact
// binary sizes, encode/decode round-trips for every message kind, the
// golden byte fixture pinning the binary frame layout (the analogue of
// the XML corpus SHA-1 pin), a truncation/corruption fuzz loop, the
// legacy XML size formulas the chaos golden counters depend on, and
// capability-based codec negotiation.
#include <gtest/gtest.h>

#include <any>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "common/rng.hpp"
#include "event/event.hpp"
#include "event/filter.hpp"
#include "pubsub/messages.hpp"
#include "wire/codec.hpp"

namespace aa::wire {
namespace {

using event::AttrValue;
using event::Event;
using event::Filter;
using event::Op;
using pubsub::AdvertiseMsg;
using pubsub::decode_publish;
using pubsub::decode_subscribe;
using pubsub::decode_sync_reply;
using pubsub::DeliverMsg;
using pubsub::PublishMsg;
using pubsub::SubscribeMsg;
using pubsub::SyncReplyMsg;
using pubsub::SyncRequestMsg;
using pubsub::UnsubscribeMsg;

Event sample_event(int i) {
  Event e("sensor.reading");
  e.set("room", "r" + std::to_string(i % 5));
  e.set("celsius", 19.5 + i);
  e.set("floor", i - 2);  // negative for small i: exercises zigzag
  e.set("occupied", i % 2 == 0);
  e.set_time(1000 * i);
  e.set_source("host-" + std::to_string(i % 3));
  return e;
}

Filter sample_filter(int i) {
  Filter f;
  f.where("type", Op::kEq, "sensor.reading");
  f.where("room", Op::kPrefix, "r" + std::to_string(i % 5));
  f.where("celsius", Op::kGt, 20.0 + i);
  return f;
}

// --- varint primitives ---------------------------------------------------

TEST(Varint, SizeMatchesEncoding) {
  for (std::uint64_t v : {0ull, 1ull, 127ull, 128ull, 300ull, 16383ull, 16384ull,
                          (1ull << 32), ~0ull}) {
    BufWriter w;
    w.varint(v);
    EXPECT_EQ(w.size(), varint_size(v)) << v;
    BufReader r(w.data());
    EXPECT_EQ(r.varint(), v);
    EXPECT_TRUE(r.at_end());
  }
}

TEST(Varint, ZigZagRoundTrip) {
  for (std::int64_t v : {std::int64_t{0}, std::int64_t{-1}, std::int64_t{1},
                         std::int64_t{-64}, std::int64_t{64},
                         std::numeric_limits<std::int64_t>::min(),
                         std::numeric_limits<std::int64_t>::max()}) {
    EXPECT_EQ(unzigzag(zigzag(v)), v);
    BufWriter w;
    w.svarint(v);
    BufReader r(w.data());
    EXPECT_EQ(r.svarint(), v);
  }
  // Small magnitudes stay short — the point of the mapping.
  EXPECT_EQ(varint_size(zigzag(-1)), 1u);
  EXPECT_EQ(varint_size(zigzag(63)), 1u);
}

TEST(Varint, ReaderRejectsOverlongEncoding) {
  Bytes overlong(11, 0x80);  // continuation bit forever
  BufReader r(overlong);
  r.varint();
  EXPECT_TRUE(r.failed());
}

// --- binary event form ---------------------------------------------------

TEST(BinaryEvent, RoundTripPreservesEquality) {
  for (int i = 0; i < 20; ++i) {
    const Event e = sample_event(i);
    BufWriter w;
    e.to_binary(w);
    EXPECT_EQ(w.size(), e.binary_wire_size()) << "size must be exact";
    BufReader r(w.data());
    auto back = Event::from_binary(r);
    ASSERT_TRUE(back.is_ok());
    EXPECT_TRUE(r.at_end());
    EXPECT_EQ(back.value(), e);
    EXPECT_EQ(back.value().describe(), e.describe());
  }
}

TEST(BinaryEvent, CacheInvalidatedOnMutation) {
  Event e = sample_event(1);
  const std::size_t before = e.binary_wire_size();
  e.set("extra", "payload-that-changes-the-size");
  EXPECT_GT(e.binary_wire_size(), before);
  BufWriter w;
  e.to_binary(w);
  EXPECT_EQ(w.size(), e.binary_wire_size());
}

TEST(BinaryEvent, DecodeRejectsBadTypeTag) {
  BufWriter w;
  w.varint(1);      // one attribute
  w.vstr("name");
  w.u8(9);          // no such ValueType
  BufReader r(w.data());
  EXPECT_FALSE(Event::from_binary(r).is_ok());
}

// --- exact binary sizes + round-trips for every message kind -------------

template <typename Msg, typename Decode>
void expect_exact_and_roundtrip(const Msg& m, Decode decode) {
  const Codec& bin = binary_codec();
  BufWriter w;
  encode(w, bin, m);
  // size() is the standalone datagram (one-member frame) cost; the body
  // written by encode() accounts for all of it but the fixed envelope.
  EXPECT_EQ(wire_size(bin, m), 4 + varint_size(w.size()) + w.size());
  BufReader r(w.data());
  auto back = decode(r, bin);
  ASSERT_TRUE(back.is_ok());
  EXPECT_TRUE(r.at_end());
}

TEST(BinaryCodec, SizesAreExactAndBodiesRoundTrip) {
  const Codec& bin = binary_codec();
  const SubscribeMsg sub{77, sample_filter(1)};
  expect_exact_and_roundtrip(sub, [](BufReader& r, const Codec& c) {
    return c.decode_subscribe(r);
  });
  expect_exact_and_roundtrip(AdvertiseMsg{301, sample_filter(2)},
                             [](BufReader& r, const Codec& c) {
                               return c.decode_advertise(r);
                             });
  expect_exact_and_roundtrip(UnsubscribeMsg{1u << 20},
                             [](BufReader& r, const Codec& c) {
                               return c.decode_unsubscribe(r);
                             });
  expect_exact_and_roundtrip(PublishMsg{sample_event(3), 999},
                             [](BufReader& r, const Codec& c) {
                               return c.decode_publish(r);
                             });
  expect_exact_and_roundtrip(DeliverMsg{sample_event(4)},
                             [](BufReader& r, const Codec& c) {
                               return c.decode_deliver(r);
                             });
  expect_exact_and_roundtrip(SyncRequestMsg{5},
                             [](BufReader& r, const Codec& c) {
                               return c.decode_sync_request(r);
                             });
  SyncReplyMsg reply;
  reply.round = 6;
  reply.subscriptions.push_back(SubscribeMsg{1, sample_filter(1)});
  reply.subscriptions.push_back(SubscribeMsg{2, sample_filter(2)});
  reply.advertisements.push_back(AdvertiseMsg{3, sample_filter(3)});
  expect_exact_and_roundtrip(reply, [](BufReader& r, const Codec& c) {
    return c.decode_sync_reply(r);
  });

  // Field-level check on one representative kind.
  BufWriter w;
  encode(w, bin, sub);
  BufReader r(w.data());
  auto back = decode_subscribe(r, bin);
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value().id, sub.id);
  EXPECT_EQ(back.value().filter.describe(), sub.filter.describe());
}

TEST(BinaryCodec, BeatsXmlOnEverySampledMessage) {
  for (int i = 0; i < 10; ++i) {
    const PublishMsg pub{sample_event(i), static_cast<std::uint64_t>(i)};
    EXPECT_LT(wire_size(binary_codec(), pub), wire_size(xml_codec(), pub));
    const SubscribeMsg sub{static_cast<std::uint64_t>(i), sample_filter(i)};
    EXPECT_LT(wire_size(binary_codec(), sub), wire_size(xml_codec(), sub));
  }
}

// --- framing -------------------------------------------------------------

std::vector<std::any> sample_bodies() {
  std::vector<std::any> bodies;
  bodies.emplace_back(SubscribeMsg{7, sample_filter(0)});
  bodies.emplace_back(PublishMsg{sample_event(1), 41});
  bodies.emplace_back(DeliverMsg{sample_event(2)});
  bodies.emplace_back(UnsubscribeMsg{7});
  bodies.emplace_back(SyncRequestMsg{3});
  return bodies;
}

TEST(BinaryFrame, FrameSizeMatchesEncodedBytes) {
  const Codec& bin = binary_codec();
  const auto bodies = sample_bodies();
  std::vector<std::size_t> datagrams;
  datagrams.push_back(wire_size(bin, std::any_cast<const SubscribeMsg&>(bodies[0])));
  datagrams.push_back(wire_size(bin, std::any_cast<const PublishMsg&>(bodies[1])));
  datagrams.push_back(wire_size(bin, std::any_cast<const DeliverMsg&>(bodies[2])));
  datagrams.push_back(wire_size(bin, std::any_cast<const UnsubscribeMsg&>(bodies[3])));
  datagrams.push_back(wire_size(bin, std::any_cast<const SyncRequestMsg&>(bodies[4])));

  auto frame = encode_frame(bin, bodies);
  ASSERT_TRUE(frame.is_ok());
  EXPECT_EQ(frame.value().size(), bin.frame_size(datagrams));
  // Coalescing must beat sending the datagrams separately.
  std::size_t separate = 0;
  for (std::size_t d : datagrams) separate += d;
  EXPECT_LT(frame.value().size(), separate);
}

TEST(BinaryFrame, DecodeRoundTripsEveryMember) {
  const Codec& bin = binary_codec();
  auto frame = encode_frame(bin, sample_bodies());
  ASSERT_TRUE(frame.is_ok());
  auto members = decode_frame(bin, frame.value());
  ASSERT_TRUE(members.is_ok());
  ASSERT_EQ(members.value().size(), 5u);
  const auto* pub = std::any_cast<PublishMsg>(&members.value()[1]);
  ASSERT_NE(pub, nullptr);
  EXPECT_EQ(pub->pub_id, 41u);
  EXPECT_EQ(pub->event, sample_event(1));
  const auto* del = std::any_cast<DeliverMsg>(&members.value()[2]);
  ASSERT_NE(del, nullptr);
  EXPECT_EQ(del->event, sample_event(2));
}

TEST(BinaryFrame, XmlCodecHasNoByteLayout) {
  EXPECT_FALSE(encode_frame(xml_codec(), sample_bodies()).is_ok());
  Bytes dummy{0xB5, 0x01, 0x00};
  EXPECT_FALSE(decode_frame(xml_codec(), dummy).is_ok());
}

TEST(BinaryFrame, RejectsForeignBody) {
  std::vector<std::any> bodies;
  bodies.emplace_back(std::string("not a pubsub message"));
  EXPECT_FALSE(encode_frame(binary_codec(), bodies).is_ok());
}

// The binary analogue of the XML corpus SHA-1 pin: any change to the
// frame layout, the member bodies, the varint form or the event binary
// encoding shows up here as a digest mismatch and must bump the frame
// version.
TEST(BinaryFrame, GoldenByteFixture) {
  std::vector<std::any> bodies;
  for (int i = 0; i < 4; ++i) {
    bodies.emplace_back(PublishMsg{sample_event(i), static_cast<std::uint64_t>(100 + i)});
    bodies.emplace_back(SubscribeMsg{static_cast<std::uint64_t>(i), sample_filter(i)});
  }
  SyncReplyMsg reply;
  reply.round = 9;
  reply.subscriptions.push_back(SubscribeMsg{1, sample_filter(1)});
  reply.advertisements.push_back(AdvertiseMsg{2, sample_filter(2)});
  bodies.emplace_back(std::move(reply));

  auto frame = encode_frame(binary_codec(), bodies);
  ASSERT_TRUE(frame.is_ok());
  ASSERT_FALSE(frame.value().empty());
  EXPECT_EQ(frame.value()[0], 0xB5);  // magic
  EXPECT_EQ(frame.value()[1], 0x01);  // version
  EXPECT_EQ(Uid160::from_content(to_string(frame.value())).to_hex(),
            "e71add379bcb860e35a5ed67b4c704b379d33cbc");
}

TEST(BinaryFrame, TruncationNeverCrashesAndAlwaysFails) {
  auto frame = encode_frame(binary_codec(), sample_bodies());
  ASSERT_TRUE(frame.is_ok());
  const Bytes& full = frame.value();
  for (std::size_t len = 0; len < full.size(); ++len) {
    std::span<const std::uint8_t> prefix(full.data(), len);
    EXPECT_FALSE(decode_frame(binary_codec(), prefix).is_ok()) << "len=" << len;
  }
}

// Seeded corruption loop (runs under the asan preset via the `sanitize`
// label): flip random bytes in a valid frame; decode must never read
// out of bounds, loop, or crash — any result is acceptable as long as
// re-encoding a successful decode is itself well-formed.
TEST(BinaryFrame, CorruptionFuzzLoop) {
  auto frame = encode_frame(binary_codec(), sample_bodies());
  ASSERT_TRUE(frame.is_ok());
  Rng rng(20260808);
  for (int trial = 0; trial < 3000; ++trial) {
    Bytes mutated = frame.value();
    const int flips = 1 + static_cast<int>(rng.next() % 4);
    for (int f = 0; f < flips; ++f) {
      const std::size_t pos = rng.next() % mutated.size();
      mutated[pos] ^= static_cast<std::uint8_t>(1 + rng.next() % 255);
    }
    auto decoded = decode_frame(binary_codec(), mutated);
    if (decoded.is_ok()) {
      auto re = encode_frame(binary_codec(), decoded.value());
      EXPECT_TRUE(re.is_ok());
    }
  }
}

TEST(BinaryCodec, SyncReplyRejectsAbsurdCounts) {
  BufWriter w;
  w.varint(1);            // round
  w.varint(1ull << 40);   // subscription count far past the cap
  BufReader r(w.data());
  EXPECT_FALSE(binary_codec().decode_sync_reply(r).is_ok());
}

// --- XML codec: legacy formulas and round-trips --------------------------

// The chaos suite pins exact byte counters for clean unbatched XML runs
// (Chaos.CleanNetworkTrafficBitIdenticalGolden); those counters assume
// these size formulas, so they are part of the golden surface.
TEST(XmlCodec, LegacySizeFormulasArePinned) {
  const Codec& xml = xml_codec();
  const Filter f = sample_filter(1);
  const std::size_t filter_size = f.describe().size() + 16;
  EXPECT_EQ(wire_size(xml, SubscribeMsg{1, f}), filter_size + 8);
  EXPECT_EQ(wire_size(xml, AdvertiseMsg{1, f}), filter_size + 8);
  EXPECT_EQ(wire_size(xml, UnsubscribeMsg{1}), 16u);
  const Event e = sample_event(1);
  EXPECT_EQ(wire_size(xml, PublishMsg{e, 7}), e.wire_size());
  EXPECT_EQ(wire_size(xml, DeliverMsg{e}), e.wire_size());
  EXPECT_EQ(wire_size(xml, SyncRequestMsg{1}), 16u);
  SyncReplyMsg reply;
  reply.round = 1;
  reply.subscriptions.push_back(SubscribeMsg{1, f});
  reply.advertisements.push_back(AdvertiseMsg{2, f});
  EXPECT_EQ(wire_size(xml, reply), 24 + 2 * (filter_size + 8));
}

TEST(XmlCodec, BodiesRoundTrip) {
  const Codec& xml = xml_codec();
  {
    BufWriter w;
    encode(w, xml, PublishMsg{sample_event(2), 55});
    BufReader r(w.data());
    auto back = decode_publish(r, xml);
    ASSERT_TRUE(back.is_ok());
    EXPECT_EQ(back.value().pub_id, 55u);
    EXPECT_EQ(back.value().event, sample_event(2));
  }
  {
    BufWriter w;
    encode(w, xml, SubscribeMsg{9, sample_filter(3)});
    BufReader r(w.data());
    auto back = decode_subscribe(r, xml);
    ASSERT_TRUE(back.is_ok());
    EXPECT_EQ(back.value().id, 9u);
    EXPECT_EQ(back.value().filter.describe(), sample_filter(3).describe());
  }
  {
    BufWriter w;
    SyncReplyMsg reply;
    reply.round = 4;
    reply.subscriptions.push_back(SubscribeMsg{1, sample_filter(0)});
    encode(w, xml, reply);
    BufReader r(w.data());
    auto back = decode_sync_reply(r, xml);
    ASSERT_TRUE(back.is_ok());
    EXPECT_EQ(back.value().round, 4u);
    ASSERT_EQ(back.value().subscriptions.size(), 1u);
  }
}

// Cross-codec equivalence: a message carried over either codec decodes
// to the same value — the wire form is a transport detail.
TEST(CrossCodec, DecodedPayloadsAreIdentical) {
  for (int i = 0; i < 8; ++i) {
    const PublishMsg pub{sample_event(i), static_cast<std::uint64_t>(i)};
    BufWriter wx, wb;
    encode(wx, xml_codec(), pub);
    encode(wb, binary_codec(), pub);
    BufReader rx(wx.data()), rb(wb.data());
    auto px = decode_publish(rx, xml_codec());
    auto pb = decode_publish(rb, binary_codec());
    ASSERT_TRUE(px.is_ok());
    ASSERT_TRUE(pb.is_ok());
    EXPECT_EQ(px.value().event, pb.value().event);
    EXPECT_EQ(px.value().event.to_xml_string(), pb.value().event.to_xml_string());
    EXPECT_EQ(px.value().pub_id, pb.value().pub_id);
  }
}

// --- negotiation ---------------------------------------------------------

TEST(CodecNames, RoundTrip) {
  EXPECT_STREQ(codec_name(WireCodec::kXml), "xml");
  EXPECT_STREQ(codec_name(WireCodec::kBinary), "binary");
  ASSERT_TRUE(codec_from_name("binary").is_ok());
  EXPECT_EQ(codec_from_name("binary").value(), WireCodec::kBinary);
  ASSERT_TRUE(codec_from_name("xml").is_ok());
  EXPECT_EQ(codec_from_name("xml").value(), WireCodec::kXml);
  EXPECT_FALSE(codec_from_name("protobuf").is_ok());
}

TEST(CodecMap, LinkSpeaksBinaryOnlyWhenBothEndsDo) {
  CodecMap map;
  EXPECT_EQ(map.link(1, 2).id(), WireCodec::kXml);  // default default

  map.set_default(WireCodec::kBinary);
  EXPECT_EQ(map.link(1, 2).id(), WireCodec::kBinary);

  // One legacy host degrades its links — and only its links — to XML.
  map.set_host(2, WireCodec::kXml);
  EXPECT_EQ(map.link(1, 2).id(), WireCodec::kXml);
  EXPECT_EQ(map.link(2, 1).id(), WireCodec::kXml);  // symmetric
  EXPECT_EQ(map.link(1, 3).id(), WireCodec::kBinary);

  // set_default is a full reset: stale per-host overrides don't linger.
  map.set_default(WireCodec::kBinary);
  EXPECT_EQ(map.link(1, 2).id(), WireCodec::kBinary);
}

}  // namespace
}  // namespace aa::wire
