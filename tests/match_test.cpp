// Tests for the matching engine: knowledge base indexing, rule XML
// round-trips, temporal windows, joins, spatial predicates, cooldowns,
// the full ice-cream scenario from §1.1, equivalence with the naive
// baseline, and discovery matchlets.
#include <gtest/gtest.h>

#include <memory>

#include "event/filter_parser.hpp"
#include "match/discovery.hpp"
#include "match/engine.hpp"
#include "match/matchlet.hpp"
#include "match/naive_engine.hpp"
#include "overlay/overlay_network.hpp"
#include "pipeline/components.hpp"

namespace aa::match {
namespace {

using event::Event;
using event::Filter;
using event::Op;

Filter f(const std::string& text) {
  auto r = event::parse_filter(text);
  EXPECT_TRUE(r.is_ok()) << text << ": " << r.status().to_string();
  return r.value_or(Filter());
}

// --- KnowledgeBase ---

TEST(Knowledge, AddQueryRemove) {
  KnowledgeBase kb;
  Fact pref;
  pref.set("kind", "preference").set("user", "bob").set("likes", "icecream");
  const FactId id = kb.add(pref);
  EXPECT_EQ(kb.query(f("kind = preference and user = bob")).size(), 1u);
  EXPECT_TRUE(kb.remove(id));
  EXPECT_TRUE(kb.query(f("kind = preference")).empty());
  EXPECT_FALSE(kb.remove(id));
}

TEST(Knowledge, UpdateReindexes) {
  KnowledgeBase kb;
  Fact fact;
  fact.set("kind", "shop").set("name", "janettas");
  const FactId id = kb.add(fact);
  Fact updated;
  updated.set("kind", "restaurant").set("name", "janettas");
  ASSERT_TRUE(kb.update(id, updated));
  EXPECT_TRUE(kb.query(f("kind = shop")).empty());
  EXPECT_EQ(kb.query(f("kind = restaurant")).size(), 1u);
}

TEST(Knowledge, IndexedProbeExaminesFewerFacts) {
  KnowledgeBase kb;
  for (int i = 0; i < 1000; ++i) {
    Fact fact;
    fact.set("kind", i % 2 == 0 ? "a" : "b").set("user", "u" + std::to_string(i));
    kb.add(fact);
  }
  const auto before = kb.stats().facts_examined;
  EXPECT_EQ(kb.query(f("user = u77")).size(), 1u);
  EXPECT_EQ(kb.stats().facts_examined - before, 1u);  // index hit exactly one
  EXPECT_GE(kb.stats().indexed_queries, 1u);
}

TEST(Knowledge, NonStringFilterFallsBackToScan) {
  KnowledgeBase kb;
  Fact fact;
  fact.set("level", 5);
  kb.add(fact);
  EXPECT_EQ(kb.query(Filter().where("level", Op::kGt, 3)).size(), 1u);
  EXPECT_GE(kb.stats().scan_queries, 1u);
}

// --- Rule XML round-trip ---

Rule ice_cream_rule() {
  Rule rule;
  rule.name = "icecream-meetup";
  rule.cooldown = duration::minutes(10);
  rule.triggers = {
      {"loc", f("type = user-location and user = bob"), duration::minutes(5)},
      {"temp", f("type = temperature"), duration::minutes(15)},
  };
  rule.facts = {
      {"pref", f("kind = preference and likes = icecream")},
      {"shop", f("kind = shop and sells = icecream")},
  };
  rule.joins = {
      {Operand::ref("loc", "user"), Op::kEq, Operand::ref("pref", "user")},
      {Operand::ref("temp", "celsius"), Op::kGe, Operand::ref("pref", "min_celsius")},
  };
  rule.spatials = {{"loc", "shop", -1.0, 600.0}};  // within 10 min walk
  rule.emit.type = "suggestion";
  rule.emit.sets = {
      {"user", std::nullopt, "loc", "user"},
      {"place", std::nullopt, "shop", "name"},
      {"what", event::AttrValue("icecream"), "", ""},
  };
  return rule;
}

TEST(RuleXml, RoundTrip) {
  const Rule rule = ice_cream_rule();
  auto back = Rule::parse(rule.to_xml_string());
  ASSERT_TRUE(back.is_ok()) << back.status().to_string() << "\n" << rule.to_xml_string();
  const Rule& r = back.value();
  EXPECT_EQ(r.name, rule.name);
  EXPECT_EQ(r.cooldown, rule.cooldown);
  ASSERT_EQ(r.triggers.size(), 2u);
  EXPECT_EQ(r.triggers[0].alias, "loc");
  EXPECT_EQ(r.triggers[0].window, duration::minutes(5));
  EXPECT_EQ(r.triggers[0].filter, rule.triggers[0].filter);
  ASSERT_EQ(r.facts.size(), 2u);
  ASSERT_EQ(r.joins.size(), 2u);
  EXPECT_EQ(r.joins[1].op, Op::kGe);
  ASSERT_EQ(r.spatials.size(), 1u);
  EXPECT_DOUBLE_EQ(r.spatials[0].max_walk_seconds, 600.0);
  ASSERT_EQ(r.emit.sets.size(), 3u);
  EXPECT_EQ(r.emit.sets[2].constant->str(), "icecream");
}

TEST(RuleXml, RejectsMalformed) {
  EXPECT_FALSE(Rule::parse("<rule name=\"x\"/>").is_ok());  // no trigger/emit
  EXPECT_FALSE(Rule::parse("<notarule/>").is_ok());
  EXPECT_FALSE(
      Rule::parse("<rule name=\"x\"><trigger alias=\"a\" filter=\"t = 1\"/></rule>").is_ok());
}

// --- Engine semantics ---

struct EngineFixture {
  KnowledgeBase kb;
  MatchEngine engine{kb};
  std::vector<Event> out;
  MatchEngine::Sink sink = [this](const Event& e) { out.push_back(e); };
};

Event loc_event(const std::string& user, double lat, double lon, SimTime t) {
  Event e("user-location");
  e.set("user", user).set("lat", lat).set("lon", lon).set_time(t);
  return e;
}

Event temp_event(double celsius, SimTime t) {
  Event e("temperature");
  e.set("celsius", celsius).set_time(t);
  return e;
}

TEST(Engine, SingleTriggerWithFactJoin) {
  EngineFixture fx;
  Fact pref;
  pref.set("kind", "preference").set("user", "bob").set("min_celsius", 18.0);
  fx.kb.add(pref);

  Rule rule;
  rule.name = "hot-for-bob";
  rule.triggers = {{"temp", f("type = temperature"), duration::minutes(5)}};
  rule.facts = {{"pref", f("kind = preference and user = bob")}};
  rule.joins = {{Operand::ref("temp", "celsius"), Op::kGe, Operand::ref("pref", "min_celsius")}};
  rule.emit.type = "hot";
  rule.emit.sets = {{"user", std::nullopt, "pref", "user"}};
  fx.engine.add_rule(rule);

  fx.engine.on_event(temp_event(20.0, 1000), 1000, fx.sink);
  fx.engine.on_event(temp_event(15.0, 2000), 2000, fx.sink);
  ASSERT_EQ(fx.out.size(), 1u);
  EXPECT_EQ(fx.out[0].type(), "hot");
  EXPECT_EQ(fx.out[0].get_string("user").value(), "bob");
  EXPECT_EQ(fx.out[0].get_string("rule").value(), "hot-for-bob");
}

TEST(Engine, TwoTriggerTemporalJoinWithinWindow) {
  EngineFixture fx;
  Rule rule;
  rule.name = "both";
  rule.triggers = {
      {"a", f("type = alpha"), duration::seconds(10)},
      {"b", f("type = beta"), duration::seconds(10)},
  };
  rule.emit.type = "correlated";
  fx.engine.add_rule(rule);

  Event alpha("alpha");
  alpha.set_time(duration::seconds(1));
  fx.engine.on_event(alpha, duration::seconds(1), fx.sink);
  EXPECT_TRUE(fx.out.empty());  // beta not seen yet

  Event beta("beta");
  beta.set_time(duration::seconds(5));
  fx.engine.on_event(beta, duration::seconds(5), fx.sink);
  EXPECT_EQ(fx.out.size(), 1u);  // alpha still in window
}

TEST(Engine, WindowExpiryPreventsStaleJoin) {
  EngineFixture fx;
  Rule rule;
  rule.name = "both";
  rule.triggers = {
      {"a", f("type = alpha"), duration::seconds(10)},
      {"b", f("type = beta"), duration::seconds(10)},
  };
  rule.emit.type = "correlated";
  fx.engine.add_rule(rule);

  Event alpha("alpha");
  alpha.set_time(duration::seconds(1));
  fx.engine.on_event(alpha, duration::seconds(1), fx.sink);
  Event beta("beta");
  beta.set_time(duration::seconds(30));
  fx.engine.on_event(beta, duration::seconds(30), fx.sink);  // alpha expired
  EXPECT_TRUE(fx.out.empty());
}

TEST(Engine, CooldownSuppressesRepeats) {
  EngineFixture fx;
  Rule rule;
  rule.name = "r";
  rule.cooldown = duration::minutes(10);
  rule.triggers = {{"t", f("type = temperature"), duration::minutes(1)}};
  rule.emit.type = "alert";
  fx.engine.add_rule(rule);

  for (int i = 0; i < 5; ++i) {
    fx.engine.on_event(temp_event(20.0, duration::seconds(i)), duration::seconds(i), fx.sink);
  }
  EXPECT_EQ(fx.out.size(), 1u);
  EXPECT_EQ(fx.engine.stats().cooldown_suppressed, 4u);

  // After the cooldown elapses it fires again.
  fx.engine.on_event(temp_event(20.0, duration::minutes(20)), duration::minutes(20), fx.sink);
  EXPECT_EQ(fx.out.size(), 2u);
}

TEST(Engine, SpatialPredicateFiltersFarApart) {
  EngineFixture fx;
  Fact shop;
  shop.set("kind", "shop").set("name", "janettas").set("lat", 56.3403).set("lon", -2.7957);
  fx.kb.add(shop);

  Rule rule;
  rule.name = "nearby";
  rule.triggers = {{"loc", f("type = user-location"), duration::minutes(5)}};
  rule.facts = {{"shop", f("kind = shop")}};
  rule.spatials = {{"loc", "shop", 500.0, -1.0}};
  rule.emit.type = "near-shop";
  rule.emit.sets = {{"user", std::nullopt, "loc", "user"}};
  fx.engine.add_rule(rule);

  fx.engine.on_event(loc_event("bob", 56.3417, -2.7972, 1000), 1000, fx.sink);  // ~200 m
  EXPECT_EQ(fx.out.size(), 1u);
  fx.engine.on_event(loc_event("anna", 56.5, -2.5, 2000), 2000, fx.sink);  // ~25 km
  EXPECT_EQ(fx.out.size(), 1u);
}

TEST(Engine, RemoveRuleStopsMatching) {
  EngineFixture fx;
  Rule rule;
  rule.name = "r";
  rule.triggers = {{"t", f("type = temperature"), duration::minutes(1)}};
  rule.emit.type = "alert";
  fx.engine.add_rule(rule);
  EXPECT_TRUE(fx.engine.remove_rule("r"));
  EXPECT_FALSE(fx.engine.remove_rule("r"));
  fx.engine.on_event(temp_event(20.0, 0), 0, fx.sink);
  EXPECT_TRUE(fx.out.empty());
}

TEST(Engine, HandlesTypeReflectsTriggers) {
  EngineFixture fx;
  Rule rule;
  rule.name = "r";
  rule.triggers = {{"t", f("type = temperature and celsius > 5"), duration::minutes(1)}};
  rule.emit.type = "alert";
  fx.engine.add_rule(rule);
  EXPECT_TRUE(fx.engine.handles_type("temperature"));
  EXPECT_FALSE(fx.engine.handles_type("humidity"));
}

// --- The §1.1 ice-cream scenario, end to end ---

TEST(Engine, IceCreamScenario) {
  EngineFixture fx;
  // The paper's items of knowledge:
  Fact pref;  // "Bob likes ice cream, but only when the weather is hot"
  pref.set("kind", "preference").set("user", "bob").set("likes", "icecream")
      .set("min_celsius", 18.0);  // "Bob is Scottish ... regards 20º as hot"
  fx.kb.add(pref);
  Fact shop;  // "Janetta's in Market Street sells ice cream, open 9-17"
  shop.set("kind", "shop").set("name", "janettas").set("sells", "icecream")
      .set("lat", 56.3403).set("lon", -2.7957).set("opens", 9.0).set("closes", 17.0);
  fx.kb.add(shop);

  fx.engine.add_rule(ice_cream_rule());

  const SimTime t0 = duration::hours(16) + duration::minutes(45);
  // "it is 20ºC ... at 16.30"
  fx.engine.on_event(temp_event(20.0, t0 - duration::minutes(15) + duration::seconds(1)),
                     t0 - duration::minutes(15) + duration::seconds(1), fx.sink);
  EXPECT_TRUE(fx.out.empty());
  // "Bob is in North Street at 16.45" (~200 m from Janetta's)
  fx.engine.on_event(loc_event("bob", 56.3417, -2.7972, t0), t0, fx.sink);

  ASSERT_EQ(fx.out.size(), 1u);
  const Event& suggestion = fx.out[0];
  EXPECT_EQ(suggestion.type(), "suggestion");
  EXPECT_EQ(suggestion.get_string("user").value(), "bob");
  EXPECT_EQ(suggestion.get_string("place").value(), "janettas");
  EXPECT_EQ(suggestion.get_string("what").value(), "icecream");
}

TEST(Engine, IceCreamScenarioColdWeatherNoMatch) {
  EngineFixture fx;
  Fact pref;
  pref.set("kind", "preference").set("user", "bob").set("likes", "icecream")
      .set("min_celsius", 18.0);
  fx.kb.add(pref);
  Fact shop;
  shop.set("kind", "shop").set("name", "janettas").set("sells", "icecream")
      .set("lat", 56.3403).set("lon", -2.7957);
  fx.kb.add(shop);
  fx.engine.add_rule(ice_cream_rule());

  fx.engine.on_event(temp_event(10.0, 1000), 1000, fx.sink);  // too cold for Bob
  fx.engine.on_event(loc_event("bob", 56.3417, -2.7972, 2000), 2000, fx.sink);
  EXPECT_TRUE(fx.out.empty());
}

// --- Naive equivalence ---

TEST(NaiveEquivalence, SameMatchesOnInWindowWorkload) {
  KnowledgeBase kb;
  Fact pref;
  pref.set("kind", "preference").set("user", "bob").set("min_celsius", 15.0);
  kb.add(pref);

  Rule rule;
  rule.name = "r";
  rule.triggers = {
      {"loc", f("type = user-location"), duration::minutes(10)},
      {"temp", f("type = temperature"), duration::minutes(10)},
  };
  rule.facts = {{"pref", f("kind = preference")}};
  rule.joins = {{Operand::ref("loc", "user"), Op::kEq, Operand::ref("pref", "user")},
                {Operand::ref("temp", "celsius"), Op::kGe,
                 Operand::ref("pref", "min_celsius")}};
  rule.emit.type = "match";
  rule.emit.sets = {{"user", std::nullopt, "loc", "user"}};

  MatchEngine incremental(kb);
  incremental.add_rule(rule);
  NaiveEngine naive(kb);
  naive.add_rule(rule);

  int inc_count = 0, naive_count = 0;
  Rng rng(3);
  SimTime t = 0;
  for (int i = 0; i < 120; ++i) {
    t += duration::seconds(static_cast<std::int64_t>(rng.below(30)));
    Event e = rng.chance(0.5)
                  ? loc_event(rng.chance(0.7) ? "bob" : "anna", 56.0, -2.0, t)
                  : temp_event(rng.uniform(5.0, 25.0), t);
    incremental.on_event(e, t, [&](const Event&) { ++inc_count; });
    naive.on_event(e, t, [&](const Event&) { ++naive_count; });
  }
  EXPECT_GT(inc_count, 0);
  EXPECT_EQ(inc_count, naive_count);
  // And the incremental engine explored far fewer candidates.
  EXPECT_LT(incremental.stats().candidate_bindings, naive.candidate_bindings());
}

// --- Matchlet as pipeline component ---

TEST(Matchlet, EmitsDownstream) {
  sim::Scheduler sched;
  auto topo = std::make_shared<sim::UniformTopology>(4, 1000);
  sim::Network net(sched, topo);
  pipeline::PipelineNetwork pipes(net);
  KnowledgeBase kb;

  auto matchlet = std::make_unique<Matchlet>("m", kb);
  Rule rule;
  rule.name = "r";
  rule.triggers = {{"t", f("type = temperature and celsius > 10"), duration::minutes(1)}};
  rule.emit.type = "hot";
  matchlet->add_rule(rule);

  auto m_ref = pipes.add(0, std::move(matchlet));
  std::vector<Event> got;
  auto sink = pipes.add(0, std::make_unique<pipeline::SinkComponent>(
                               "s", [&](const Event& e) { got.push_back(e); }));
  ASSERT_TRUE(pipes.connect(m_ref, sink).is_ok());

  pipes.inject(m_ref, temp_event(20.0, 0));
  sched.run();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].type(), "hot");
}

// --- Discovery ---

struct DiscoveryFixture {
  sim::Scheduler sched;
  std::shared_ptr<sim::Topology> topo = std::make_shared<sim::UniformTopology>(16, 1000);
  sim::Network net{sched, topo};
  overlay::OverlayNetwork overlay;
  storage::ObjectStore store;
  bundle::ThinServerRuntime runtime{net, "secret"};
  bundle::BundleDeployer deployer{net, runtime};
  pipeline::PipelineNetwork pipes{net};
  KnowledgeBase kb;

  DiscoveryFixture()
      : overlay(net, no_maintenance()), store(net, overlay, storage::ObjectStore::Params{}) {
    std::vector<sim::HostId> hosts;
    for (sim::HostId h = 0; h < 16; ++h) hosts.push_back(h);
    overlay.build_ring(hosts);
    store.sync_hosts();
    register_matchlet_installer(runtime, pipes, [this](sim::HostId) -> KnowledgeBase& {
      return kb;
    });
    for (sim::HostId h = 0; h < 16; ++h) runtime.start_server(h, {"run.matchlet"});
  }
  static overlay::OverlayNetwork::Params no_maintenance() {
    overlay::OverlayNetwork::Params p;
    p.maintenance_period = 0;
    return p;
  }
};

TEST(Discovery, FetchesAndDeploysHandlerForUnknownType) {
  DiscoveryFixture fx;
  // Publish a handler bundle for "pollen" events in the code directory.
  Rule rule;
  rule.name = "pollen-alert";
  rule.triggers = {{"p", f("type = pollen and level > 5"), duration::minutes(1)}};
  rule.emit.type = "pollen-warning";
  xml::Element config("config");
  config.add_child(rule.to_xml());
  bundle::CodeBundle handler("pollen-handler", "matchlet", config);
  handler.require_capability("run.matchlet");
  fx.store.put_named(0, DiscoveryService::handler_key("pollen"),
                     to_bytes(handler.to_xml_string()));
  fx.sched.run();

  DiscoveryService discovery(
      3, fx.store, fx.deployer,
      [&](const std::string& type) {
        // "handled" = some matchlet on host 5 handles it.
        const auto* c = fx.pipes.component(pipeline::ComponentRef{5, "pollen-handler"});
        return c != nullptr && type == "pollen";
      },
      [](const std::string&) { return sim::HostId{5}; });

  Event pollen("pollen");
  pollen.set("level", 8);
  EXPECT_FALSE(discovery.consider(pollen));
  fx.sched.run();

  EXPECT_EQ(discovery.stats().handlers_deployed, 1u);
  EXPECT_TRUE(discovery.deployed_types().contains("pollen"));
  EXPECT_TRUE(fx.pipes.exists(pipeline::ComponentRef{5, "pollen-handler"}));
  EXPECT_TRUE(discovery.consider(pollen));  // now handled
}

TEST(Discovery, UnpublishedTypeFailsOnce) {
  DiscoveryFixture fx;
  DiscoveryService discovery(
      3, fx.store, fx.deployer, [](const std::string&) { return false; },
      [](const std::string&) { return sim::HostId{5}; });
  Event mystery("mystery");
  EXPECT_FALSE(discovery.consider(mystery));
  fx.sched.run();
  EXPECT_EQ(discovery.stats().lookup_failures, 1u);
  // Subsequent sightings do not retry (remembered as unpublished).
  EXPECT_FALSE(discovery.consider(mystery));
  fx.sched.run();
  EXPECT_EQ(discovery.stats().lookups, 1u);
  discovery.reset_failed();
  EXPECT_FALSE(discovery.consider(mystery));
  fx.sched.run();
  EXPECT_EQ(discovery.stats().lookups, 2u);
}

TEST(Discovery, MatchletPassesEventsThrough) {
  DiscoveryFixture fx;
  DiscoveryService discovery(
      3, fx.store, fx.deployer, [](const std::string&) { return true; },
      [](const std::string&) { return sim::HostId{5}; });
  auto watcher =
      fx.pipes.add(0, std::make_unique<DiscoveryMatchlet>("disc", discovery));
  std::vector<Event> got;
  auto sink = fx.pipes.add(0, std::make_unique<pipeline::SinkComponent>(
                                  "s", [&](const Event& e) { got.push_back(e); }));
  ASSERT_TRUE(fx.pipes.connect(watcher, sink).is_ok());
  fx.pipes.inject(watcher, temp_event(5.0, 0));
  fx.sched.run();
  EXPECT_EQ(got.size(), 1u);
}

}  // namespace
}  // namespace aa::match
