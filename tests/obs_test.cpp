// Tests for the aa::obs layer: trace collection, Chrome-JSON export +
// validation, per-delivery metrics, the metrics hub plumbing, the
// sim-time logger clock, and — end to end — causal traces threading
// broker routing, pipelines, reliable retransmission and delivery.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/log.hpp"
#include "event/filter_parser.hpp"
#include "gloss/active_architecture.hpp"
#include "obs/metrics_hub.hpp"
#include "obs/trace.hpp"
#include "pubsub/siena_network.hpp"
#include "sim/metrics.hpp"
#include "sim/network.hpp"
#include "sim/reliable.hpp"

namespace aa {
namespace {

using event::Event;
using event::Filter;
using event::Op;

// --- TraceCollector core ---

TEST(Trace, SpansNestAndCloseIdempotently) {
  obs::TraceCollector tc;
  const obs::TraceContext root = tc.start_trace();
  ASSERT_TRUE(root.active());

  const std::uint64_t a = tc.begin(root, 3, "client", "publish", 100);
  const std::uint64_t b = tc.begin({root.trace_id, a}, 3, "net", "wire", 100);
  tc.end(b, 150);
  tc.end(b, 999);  // idempotent: a duplicated packet cannot stretch the span
  tc.annotate(b, "p->h4");
  tc.annotate(b, "dup");
  tc.end(a, 150);

  ASSERT_EQ(tc.spans().size(), 2u);
  EXPECT_EQ(tc.span(b)->parent, a);
  EXPECT_EQ(tc.span(b)->end, 150);
  EXPECT_EQ(tc.span(b)->detail, "p->h4;dup");
  EXPECT_EQ(tc.span(a)->parent, 0u);
  EXPECT_EQ(tc.trace(root.trace_id).size(), 2u);
}

TEST(Trace, InactiveContextIsFree) {
  obs::TraceCollector tc;
  EXPECT_EQ(tc.begin(obs::TraceContext{}, 0, "x", "y", 0), 0u);
  EXPECT_TRUE(tc.spans().empty());
}

TEST(Trace, SamplingAdmitsEveryNth) {
  obs::TraceCollector tc;
  tc.set_sample_every(3);
  int active = 0;
  for (int i = 0; i < 9; ++i) {
    if (tc.start_trace().active()) ++active;
  }
  EXPECT_EQ(active, 3);
  tc.set_sample_every(0);  // stop admitting new traces entirely
  EXPECT_FALSE(tc.start_trace().active());
}

TEST(Trace, DeliveryMetricsBreakDownTheChain) {
  obs::TraceCollector tc;
  const obs::TraceContext root = tc.start_trace();
  const std::uint64_t pub = tc.begin(root, 0, "client", "publish", 0);
  const std::uint64_t wire = tc.begin({root.trace_id, pub}, 0, "net", "wire", 0);
  tc.end(wire, 10);
  const std::uint64_t del = tc.begin({root.trace_id, wire}, 1, "client", "deliver", 15);
  tc.end(del, 15);
  tc.end(pub, 0);

  const auto metrics = tc.delivery_metrics();
  ASSERT_EQ(metrics.size(), 1u);
  EXPECT_EQ(metrics[0].trace_id, root.trace_id);
  EXPECT_EQ(metrics[0].host, 1u);
  EXPECT_EQ(metrics[0].hops, 1);
  EXPECT_EQ(metrics[0].total, 15);
  EXPECT_EQ(metrics[0].wire, 10);
  EXPECT_EQ(metrics[0].match, 0);
  EXPECT_EQ(metrics[0].queue, 5);
}

// --- Chrome JSON export + validator ---

TEST(TraceValidator, AcceptsCollectorExport) {
  obs::TraceCollector tc;
  const obs::TraceContext root = tc.start_trace();
  const std::uint64_t a = tc.begin(root, 0, "client", "publish", 5);
  const std::uint64_t b = tc.begin({root.trace_id, a}, 0, "net", "wire", 5);
  tc.annotate(b, "quoted \"detail\"\nline");
  tc.end(b, 25);
  tc.end(a, 5);
  tc.begin({root.trace_id, b}, 1, "client", "deliver", 25);  // left open

  std::istringstream in(tc.chrome_json());
  const auto problems = obs::validate_chrome_trace(in);
  EXPECT_TRUE(problems.empty()) << (problems.empty() ? "" : problems.front());
}

TEST(TraceValidator, RejectsMalformedJson) {
  std::istringstream in("{\"traceEvents\":[");
  EXPECT_FALSE(obs::validate_chrome_trace(in).empty());
}

TEST(TraceValidator, RejectsMissingParent) {
  std::istringstream in(R"({"traceEvents":[
    {"name":"deliver","ph":"X","ts":5,"dur":0,"pid":0,"tid":1,
     "args":{"trace":1,"span":2,"parent":7}}]})");
  const auto problems = obs::validate_chrome_trace(in);
  ASSERT_FALSE(problems.empty());
}

TEST(TraceValidator, RejectsDuplicateSpanIds) {
  std::istringstream in(R"({"traceEvents":[
    {"name":"a","ph":"X","ts":0,"dur":0,"pid":0,"tid":1,"args":{"trace":1,"span":1,"parent":0}},
    {"name":"b","ph":"X","ts":1,"dur":0,"pid":0,"tid":1,"args":{"trace":1,"span":1,"parent":0}}]})");
  EXPECT_FALSE(obs::validate_chrome_trace(in).empty());
}

TEST(TraceValidator, RejectsChildStartingBeforeParent) {
  std::istringstream in(R"({"traceEvents":[
    {"name":"a","ph":"X","ts":100,"dur":0,"pid":0,"tid":1,"args":{"trace":1,"span":1,"parent":0}},
    {"name":"b","ph":"X","ts":50,"dur":0,"pid":0,"tid":1,"args":{"trace":1,"span":2,"parent":1}}]})");
  EXPECT_FALSE(obs::validate_chrome_trace(in).empty());
}

TEST(TraceValidator, RejectsCrossTraceParent) {
  std::istringstream in(R"({"traceEvents":[
    {"name":"a","ph":"X","ts":0,"dur":0,"pid":0,"tid":1,"args":{"trace":1,"span":1,"parent":0}},
    {"name":"b","ph":"X","ts":1,"dur":0,"pid":0,"tid":2,"args":{"trace":2,"span":2,"parent":1}}]})");
  EXPECT_FALSE(obs::validate_chrome_trace(in).empty());
}

// --- Histogram::merge (satellite b) ---

TEST(Metrics, HistogramMergePreservesPercentiles) {
  sim::Histogram low, high, all;
  for (int i = 1; i <= 50; ++i) {
    low.record(i);
    all.record(i);
  }
  for (int i = 51; i <= 100; ++i) {
    high.record(i);
    all.record(i);
  }
  // Percentile queries sort lazily; merging *after* a query must still
  // include the merged samples in the next query.
  const double pre_merge_p50 = low.percentile(50);
  low.merge(high);
  EXPECT_GT(low.percentile(50), pre_merge_p50);
  EXPECT_EQ(low.count(), 100u);
  EXPECT_DOUBLE_EQ(low.percentile(50), all.percentile(50));
  EXPECT_DOUBLE_EQ(low.percentile(99), all.percentile(99));
  EXPECT_DOUBLE_EQ(low.max(), 100.0);

  sim::Histogram empty;
  low.merge(empty);  // merging nothing changes nothing
  EXPECT_EQ(low.count(), 100u);

  sim::Histogram self;
  self.record(1);
  self.record(3);
  self.merge(self);  // self-merge doubles the samples, keeps quantiles
  EXPECT_EQ(self.count(), 4u);
  EXPECT_DOUBLE_EQ(self.max(), 3.0);
}

// --- MetricsRegistry JSON + accessors (satellite c) ---

TEST(Metrics, RegistryToJsonRoundTrip) {
  sim::MetricsRegistry reg;
  reg.add("net.messages_sent", 7);
  reg.add("broker.routed", 3);
  reg.histogram("trace.hops").record(2);
  reg.histogram("trace.hops").record(4);

  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"net.messages_sent\":7"), std::string::npos) << json;
  EXPECT_NE(json.find("\"broker.routed\":3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"trace.hops\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"count\":2"), std::string::npos) << json;

  // Const accessors see the same data, without creating entries.
  const sim::MetricsRegistry& cref = reg;
  ASSERT_NE(cref.find_histogram("trace.hops"), nullptr);
  EXPECT_EQ(cref.find_histogram("trace.hops")->count(), 2u);
  EXPECT_EQ(cref.find_histogram("absent"), nullptr);
  EXPECT_EQ(cref.histograms().size(), 1u);

  // Round-trip: rebuilding a registry from the accessors reproduces the
  // exact same JSON document.
  sim::MetricsRegistry rebuilt;
  for (const auto& [name, value] : cref.counters()) rebuilt.add(name, value);
  for (const auto& [name, h] : cref.histograms()) rebuilt.histogram(name).merge(h);
  EXPECT_EQ(rebuilt.to_json(), json);
}

TEST(Metrics, HubSnapshotsEverySource) {
  obs::MetricsHub hub;
  sim::NetworkStats net;
  net.messages_sent = 11;
  hub.add_stats("net", net);
  hub.add_source([](sim::MetricsRegistry& reg) { reg.add("custom.flag", 1); });
  EXPECT_EQ(hub.source_count(), 2u);

  const sim::MetricsRegistry reg = hub.snapshot();
  EXPECT_EQ(reg.counter("net.messages_sent"), 11u);
  EXPECT_EQ(reg.counter("custom.flag"), 1u);
}

// --- Logger sim-time clock (satellite a) ---

TEST(Logging, ClockPrefixesLinesWithSimTime) {
  std::vector<std::string> lines;
  Logger::set_sink([&lines](const std::string& line) { lines.push_back(line); });
  Logger::set_clock([]() { return std::int64_t{1234}; });
  const LogLevel saved = Logger::level();
  Logger::set_level(LogLevel::kInfo);

  AA_INFO("test") << "hello";
  Logger::set_clock(nullptr);
  AA_INFO("test") << "later";

  Logger::set_level(saved);
  Logger::set_sink(nullptr);

  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].rfind("[t=1234us] ", 0), 0u) << lines[0];
  EXPECT_NE(lines[0].find("hello"), std::string::npos);
  EXPECT_EQ(lines[1].find("[t="), std::string::npos) << lines[1];
}

// --- Trace propagation through retransmission (satellite d) ---

TEST(Tracing, RetransmitDedupKeepsOneDeliverSpanPerDelivery) {
  sim::Scheduler sched;
  auto topo = std::make_shared<sim::UniformTopology>(2, duration::millis(5));
  sim::Network net(sched, topo);
  pubsub::SienaNetwork ps(net, {0, 1});
  ps.connect_tree();
  sim::ReliableParams rp;
  rp.initial_rto = duration::millis(20);
  rp.backoff = 2.0;
  rp.max_rto = duration::millis(500);
  rp.max_retries = 20;
  ps.enable_reliable_transport(rp);

  ps.attach_client(0, 0);
  ps.attach_client(1, 1);
  int delivered = 0;
  ps.subscribe(1, Filter().where("type", Op::kEq, "ping"),
               [&delivered](const Event&) { ++delivered; });
  sched.run();
  net.reset_stats();

  net.enable_tracing();
  // Lossy, duplicating broker-broker link: retries recover the drops and
  // receiver-side dedup must swallow the duplicates *before* any deliver
  // span is recorded.
  net.set_link_faults(0, 1, sim::LinkFaults{.drop = 0.3, .duplicate = 0.4, .seed = 99});

  constexpr int kEvents = 20;
  for (int i = 0; i < kEvents; ++i) {
    Event e("ping");
    e.set("n", i);
    ps.publish(0, e);
    sched.run();
  }

  ASSERT_EQ(delivered, kEvents);
  const obs::TraceCollector* tc = net.tracer();
  ASSERT_NE(tc, nullptr);
  int deliver_spans = 0, retransmit_spans = 0;
  for (const obs::Span& s : tc->spans()) {
    if (s.action == "deliver") ++deliver_spans;
    if (s.action == "retransmit") ++retransmit_spans;
  }
  // The faults were real — retries happened and duplicates arrived — yet
  // exactly one deliver span per delivery survived.
  EXPECT_EQ(deliver_spans, kEvents);
  EXPECT_GT(retransmit_spans, 0);
  ASSERT_NE(ps.reliable_transport(), nullptr);
  EXPECT_GT(ps.reliable_transport()->stats().retransmits, 0u);
  EXPECT_GT(ps.reliable_transport()->stats().duplicates_suppressed, 0u);
  EXPECT_EQ(ps.reliable_transport()->stats().give_ups, 0u);

  std::istringstream in(tc->chrome_json());
  EXPECT_TRUE(obs::validate_chrome_trace(in).empty());
}

// --- End to end through the facade ---

TEST(Tracing, FacadeTraceThreadsBrokerPipelineAndDelivery) {
  gloss::ActiveArchitecture::Config config;
  config.hosts = 8;
  config.brokers = 2;
  config.regions = 2;
  gloss::ActiveArchitecture arch(config);
  arch.enable_tracing();

  match::Rule rule;
  rule.name = "echo";
  rule.triggers = {{"p", event::parse_filter("type = ping").value(), duration::minutes(2)}};
  rule.emit.type = "pong";

  gloss::ServiceSpec spec;
  spec.name = "echo";
  spec.input = event::parse_filter("type = ping").value();
  spec.rules = {rule};
  arch.deploy_service(spec);
  arch.run_for(duration::seconds(30));

  int delivered = 0;
  std::uint64_t delivered_trace = 0;
  arch.subscribe_user(5, event::parse_filter("type = pong").value(),
                      [&](const Event& e) {
                        ++delivered;
                        delivered_trace = e.trace_id();
                      });
  arch.run_for(duration::seconds(5));

  for (int i = 0; i < 5; ++i) {
    Event ping("ping");
    ping.set("n", i);
    arch.publish(3, ping);
    arch.run_for(duration::seconds(2));
  }
  arch.run_for(duration::seconds(5));

  ASSERT_GT(delivered, 0);
  // Delivered events carry their trace coordinates as attributes.
  EXPECT_NE(delivered_trace, 0u);

  const obs::TraceCollector* tc = arch.network().tracer();
  ASSERT_NE(tc, nullptr);

  // Some single trace must witness the whole path: broker routing, the
  // pipeline handing the event to a component, and final delivery.
  bool full_path = false;
  for (std::uint64_t tid = 1; tid <= tc->trace_count() && !full_path; ++tid) {
    bool route = false, put = false, deliver = false;
    for (const obs::Span* s : tc->trace(tid)) {
      route |= s->component == "broker" && s->action == "route";
      put |= s->component == "pipeline" && s->action == "put";
      deliver |= s->component == "client" && s->action == "deliver";
    }
    full_path = route && put && deliver;
  }
  EXPECT_TRUE(full_path);

  // Derived per-delivery metrics exist and crossed at least one wire.
  const auto dm = tc->delivery_metrics();
  ASSERT_FALSE(dm.empty());
  bool some_hops = false;
  for (const auto& m : dm) some_hops |= m.hops > 0;
  EXPECT_TRUE(some_hops);

  // The export validates.
  std::istringstream in(tc->chrome_json());
  const auto problems = obs::validate_chrome_trace(in);
  EXPECT_TRUE(problems.empty()) << (problems.empty() ? "" : problems.front());
}

}  // namespace
}  // namespace aa
