// Tests for the aa::obs layer: trace collection, Chrome-JSON export +
// validation, per-delivery metrics, the metrics hub plumbing, the
// sim-time logger clock, and — end to end — causal traces threading
// broker routing, pipelines, reliable retransmission and delivery.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/log.hpp"
#include "obs/profiler.hpp"
#include "event/filter_parser.hpp"
#include "gloss/active_architecture.hpp"
#include "obs/metrics_hub.hpp"
#include "obs/trace.hpp"
#include "pubsub/siena_network.hpp"
#include "sim/metrics.hpp"
#include "sim/network.hpp"
#include "sim/reliable.hpp"

namespace aa {
namespace {

using event::Event;
using event::Filter;
using event::Op;

// --- TraceCollector core ---

TEST(Trace, SpansNestAndCloseIdempotently) {
  obs::TraceCollector tc;
  const obs::TraceContext root = tc.start_trace();
  ASSERT_TRUE(root.active());

  const std::uint64_t a = tc.begin(root, 3, "client", "publish", 100);
  const std::uint64_t b = tc.begin({root.trace_id, a}, 3, "net", "wire", 100);
  tc.end(b, 150);
  tc.end(b, 999);  // idempotent: a duplicated packet cannot stretch the span
  tc.annotate(b, "p->h4");
  tc.annotate(b, "dup");
  tc.end(a, 150);

  ASSERT_EQ(tc.spans().size(), 2u);
  EXPECT_EQ(tc.span(b)->parent, a);
  EXPECT_EQ(tc.span(b)->end, 150);
  EXPECT_EQ(tc.span(b)->detail, "p->h4;dup");
  EXPECT_EQ(tc.span(a)->parent, 0u);
  EXPECT_EQ(tc.trace(root.trace_id).size(), 2u);
}

TEST(Trace, InactiveContextIsFree) {
  obs::TraceCollector tc;
  EXPECT_EQ(tc.begin(obs::TraceContext{}, 0, "x", "y", 0), 0u);
  EXPECT_TRUE(tc.spans().empty());
}

TEST(Trace, SamplingAdmitsEveryNth) {
  obs::TraceCollector tc;
  tc.set_sample_every(3);
  int active = 0;
  for (int i = 0; i < 9; ++i) {
    if (tc.start_trace().active()) ++active;
  }
  EXPECT_EQ(active, 3);
  tc.set_sample_every(0);  // stop admitting new traces entirely
  EXPECT_FALSE(tc.start_trace().active());
}

TEST(Trace, DeliveryMetricsBreakDownTheChain) {
  obs::TraceCollector tc;
  const obs::TraceContext root = tc.start_trace();
  const std::uint64_t pub = tc.begin(root, 0, "client", "publish", 0);
  const std::uint64_t wire = tc.begin({root.trace_id, pub}, 0, "net", "wire", 0);
  tc.end(wire, 10);
  const std::uint64_t del = tc.begin({root.trace_id, wire}, 1, "client", "deliver", 15);
  tc.end(del, 15);
  tc.end(pub, 0);

  const auto metrics = tc.delivery_metrics();
  ASSERT_EQ(metrics.size(), 1u);
  EXPECT_EQ(metrics[0].trace_id, root.trace_id);
  EXPECT_EQ(metrics[0].host, 1u);
  EXPECT_EQ(metrics[0].hops, 1);
  EXPECT_EQ(metrics[0].total, 15);
  EXPECT_EQ(metrics[0].wire, 10);
  EXPECT_EQ(metrics[0].match, 0);
  EXPECT_EQ(metrics[0].queue, 5);
}

// --- Chrome JSON export + validator ---

TEST(TraceValidator, AcceptsCollectorExport) {
  obs::TraceCollector tc;
  const obs::TraceContext root = tc.start_trace();
  const std::uint64_t a = tc.begin(root, 0, "client", "publish", 5);
  const std::uint64_t b = tc.begin({root.trace_id, a}, 0, "net", "wire", 5);
  tc.annotate(b, "quoted \"detail\"\nline");
  tc.end(b, 25);
  tc.end(a, 5);
  tc.begin({root.trace_id, b}, 1, "client", "deliver", 25);  // left open

  std::istringstream in(tc.chrome_json());
  const auto problems = obs::validate_chrome_trace(in);
  EXPECT_TRUE(problems.empty()) << (problems.empty() ? "" : problems.front());
}

TEST(TraceValidator, RejectsMalformedJson) {
  std::istringstream in("{\"traceEvents\":[");
  EXPECT_FALSE(obs::validate_chrome_trace(in).empty());
}

TEST(TraceValidator, RejectsMissingParent) {
  std::istringstream in(R"({"traceEvents":[
    {"name":"deliver","ph":"X","ts":5,"dur":0,"pid":0,"tid":1,
     "args":{"trace":1,"span":2,"parent":7}}]})");
  const auto problems = obs::validate_chrome_trace(in);
  ASSERT_FALSE(problems.empty());
}

TEST(TraceValidator, RejectsDuplicateSpanIds) {
  std::istringstream in(R"({"traceEvents":[
    {"name":"a","ph":"X","ts":0,"dur":0,"pid":0,"tid":1,"args":{"trace":1,"span":1,"parent":0}},
    {"name":"b","ph":"X","ts":1,"dur":0,"pid":0,"tid":1,"args":{"trace":1,"span":1,"parent":0}}]})");
  EXPECT_FALSE(obs::validate_chrome_trace(in).empty());
}

TEST(TraceValidator, RejectsChildStartingBeforeParent) {
  std::istringstream in(R"({"traceEvents":[
    {"name":"a","ph":"X","ts":100,"dur":0,"pid":0,"tid":1,"args":{"trace":1,"span":1,"parent":0}},
    {"name":"b","ph":"X","ts":50,"dur":0,"pid":0,"tid":1,"args":{"trace":1,"span":2,"parent":1}}]})");
  EXPECT_FALSE(obs::validate_chrome_trace(in).empty());
}

TEST(TraceValidator, RejectsCrossTraceParent) {
  std::istringstream in(R"({"traceEvents":[
    {"name":"a","ph":"X","ts":0,"dur":0,"pid":0,"tid":1,"args":{"trace":1,"span":1,"parent":0}},
    {"name":"b","ph":"X","ts":1,"dur":0,"pid":0,"tid":2,"args":{"trace":2,"span":2,"parent":1}}]})");
  EXPECT_FALSE(obs::validate_chrome_trace(in).empty());
}

// --- Histogram::merge (satellite b) ---

TEST(Metrics, HistogramMergePreservesPercentiles) {
  sim::Histogram low, high, all;
  for (int i = 1; i <= 50; ++i) {
    low.record(i);
    all.record(i);
  }
  for (int i = 51; i <= 100; ++i) {
    high.record(i);
    all.record(i);
  }
  // Percentile queries sort lazily; merging *after* a query must still
  // include the merged samples in the next query.
  const double pre_merge_p50 = low.percentile(50);
  low.merge(high);
  EXPECT_GT(low.percentile(50), pre_merge_p50);
  EXPECT_EQ(low.count(), 100u);
  EXPECT_DOUBLE_EQ(low.percentile(50), all.percentile(50));
  EXPECT_DOUBLE_EQ(low.percentile(99), all.percentile(99));
  EXPECT_DOUBLE_EQ(low.max(), 100.0);

  sim::Histogram empty;
  low.merge(empty);  // merging nothing changes nothing
  EXPECT_EQ(low.count(), 100u);

  sim::Histogram self;
  self.record(1);
  self.record(3);
  self.merge(self);  // self-merge doubles the samples, keeps quantiles
  EXPECT_EQ(self.count(), 4u);
  EXPECT_DOUBLE_EQ(self.max(), 3.0);
}

// --- MetricsRegistry JSON + accessors (satellite c) ---

TEST(Metrics, RegistryToJsonRoundTrip) {
  sim::MetricsRegistry reg;
  reg.add("net.messages_sent", 7);
  reg.add("broker.routed", 3);
  reg.histogram("trace.hops").record(2);
  reg.histogram("trace.hops").record(4);

  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"net.messages_sent\":7"), std::string::npos) << json;
  EXPECT_NE(json.find("\"broker.routed\":3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"trace.hops\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"count\":2"), std::string::npos) << json;

  // Const accessors see the same data, without creating entries.
  const sim::MetricsRegistry& cref = reg;
  ASSERT_NE(cref.find_histogram("trace.hops"), nullptr);
  EXPECT_EQ(cref.find_histogram("trace.hops")->count(), 2u);
  EXPECT_EQ(cref.find_histogram("absent"), nullptr);
  EXPECT_EQ(cref.histograms().size(), 1u);

  // Round-trip: rebuilding a registry from the accessors reproduces the
  // exact same JSON document.
  sim::MetricsRegistry rebuilt;
  for (const auto& [name, value] : cref.counters()) rebuilt.add(name, value);
  for (const auto& [name, h] : cref.histograms()) rebuilt.histogram(name).merge(h);
  EXPECT_EQ(rebuilt.to_json(), json);
}

TEST(Metrics, HubSnapshotsEverySource) {
  obs::MetricsHub hub;
  sim::NetworkStats net;
  net.messages_sent = 11;
  hub.add_stats("net", net);
  hub.add_source([](sim::MetricsRegistry& reg) { reg.add("custom.flag", 1); });
  EXPECT_EQ(hub.source_count(), 2u);

  const sim::MetricsRegistry reg = hub.snapshot();
  EXPECT_EQ(reg.counter("net.messages_sent"), 11u);
  EXPECT_EQ(reg.counter("custom.flag"), 1u);
}

TEST(Metrics, NetworkExportIncludesBatchCounters) {
  obs::MetricsHub hub;
  sim::NetworkStats net;
  net.messages_sent = 10;
  net.frames_sent = 2;
  net.batched_messages = 6;
  net.batch_flushes = 3;
  hub.add_stats("net", net);
  const sim::MetricsRegistry reg = hub.snapshot();
  EXPECT_EQ(reg.counter("net.batch.frames"), 2u);
  EXPECT_EQ(reg.counter("net.batch.members"), 6u);
  EXPECT_EQ(reg.counter("net.batch.flushes"), 3u);
  // 10 messages, 6 of which coalesced into 2 frames: 6 physical packets.
  EXPECT_EQ(reg.counter("net.packets_sent"), 6u);
}

TEST(Tracing, BatchedFrameRecordsOneWireSpanForAllMembers) {
  sim::Scheduler sched;
  auto topo = std::make_shared<sim::UniformTopology>(2, duration::millis(5));
  sim::Network net(sched, topo);
  net.enable_tracing();
  net.enable_batching();
  int got = 0;
  net.register_handler(1, "t", [&](const sim::Packet&) { ++got; });
  sched.after(1, [&] {
    sim::Network::TraceScope root(net, net.start_trace());
    net.send(0, 1, "t", 1, 100);
    net.send(0, 1, "t", 2, 100);
    net.send(0, 1, "t", 3, 100);
  });
  sched.run();
  ASSERT_EQ(got, 3);
  const obs::TraceCollector* tc = net.tracer();
  ASSERT_NE(tc, nullptr);
  int wire_spans = 0;
  bool batch_annotated = false;
  for (const obs::Span& s : tc->spans()) {
    if (s.action != "wire") continue;
    ++wire_spans;
    if (s.detail.find("batch:3") != std::string::npos) batch_annotated = true;
  }
  // One physical hop, one wire span — members don't fake three.
  EXPECT_EQ(wire_spans, 1);
  EXPECT_TRUE(batch_annotated);
  std::istringstream in(tc->chrome_json());
  EXPECT_TRUE(obs::validate_chrome_trace(in).empty());
}

// --- Logger sim-time clock (satellite a) ---

TEST(Logging, ClockPrefixesLinesWithSimTime) {
  std::vector<std::string> lines;
  Logger::set_sink([&lines](const std::string& line) { lines.push_back(line); });
  Logger::set_clock([]() { return std::int64_t{1234}; });
  const LogLevel saved = Logger::level();
  Logger::set_level(LogLevel::kInfo);

  AA_INFO("test") << "hello";
  Logger::set_clock(nullptr);
  AA_INFO("test") << "later";

  Logger::set_level(saved);
  Logger::set_sink(nullptr);

  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].rfind("[t=1234us] ", 0), 0u) << lines[0];
  EXPECT_NE(lines[0].find("hello"), std::string::npos);
  EXPECT_EQ(lines[1].find("[t="), std::string::npos) << lines[1];
}

// --- Trace propagation through retransmission (satellite d) ---

TEST(Tracing, RetransmitDedupKeepsOneDeliverSpanPerDelivery) {
  sim::Scheduler sched;
  auto topo = std::make_shared<sim::UniformTopology>(2, duration::millis(5));
  sim::Network net(sched, topo);
  pubsub::SienaNetwork ps(net, {0, 1});
  ps.connect_tree();
  sim::ReliableParams rp;
  rp.initial_rto = duration::millis(20);
  rp.backoff = 2.0;
  rp.max_rto = duration::millis(500);
  rp.max_retries = 20;
  ps.enable_reliable_transport(rp);

  ps.attach_client(0, 0);
  ps.attach_client(1, 1);
  int delivered = 0;
  ps.subscribe(1, Filter().where("type", Op::kEq, "ping"),
               [&delivered](const Event&) { ++delivered; });
  sched.run();
  net.reset_stats();

  net.enable_tracing();
  // Lossy, duplicating broker-broker link: retries recover the drops and
  // receiver-side dedup must swallow the duplicates *before* any deliver
  // span is recorded.
  net.set_link_faults(0, 1, sim::LinkFaults{.drop = 0.3, .duplicate = 0.4, .seed = 99});

  constexpr int kEvents = 20;
  for (int i = 0; i < kEvents; ++i) {
    Event e("ping");
    e.set("n", i);
    ps.publish(0, e);
    sched.run();
  }

  ASSERT_EQ(delivered, kEvents);
  const obs::TraceCollector* tc = net.tracer();
  ASSERT_NE(tc, nullptr);
  int deliver_spans = 0, retransmit_spans = 0;
  for (const obs::Span& s : tc->spans()) {
    if (s.action == "deliver") ++deliver_spans;
    if (s.action == "retransmit") ++retransmit_spans;
  }
  // The faults were real — retries happened and duplicates arrived — yet
  // exactly one deliver span per delivery survived.
  EXPECT_EQ(deliver_spans, kEvents);
  EXPECT_GT(retransmit_spans, 0);
  ASSERT_NE(ps.reliable_transport(), nullptr);
  EXPECT_GT(ps.reliable_transport()->stats().retransmits, 0u);
  EXPECT_GT(ps.reliable_transport()->stats().duplicates_suppressed, 0u);
  EXPECT_EQ(ps.reliable_transport()->stats().give_ups, 0u);

  std::istringstream in(tc->chrome_json());
  EXPECT_TRUE(obs::validate_chrome_trace(in).empty());
}

// --- End to end through the facade ---

TEST(Tracing, FacadeTraceThreadsBrokerPipelineAndDelivery) {
  gloss::ActiveArchitecture::Config config;
  config.hosts = 8;
  config.brokers = 2;
  config.regions = 2;
  gloss::ActiveArchitecture arch(config);
  arch.enable_tracing();

  match::Rule rule;
  rule.name = "echo";
  rule.triggers = {{"p", event::parse_filter("type = ping").value(), duration::minutes(2)}};
  rule.emit.type = "pong";

  gloss::ServiceSpec spec;
  spec.name = "echo";
  spec.input = event::parse_filter("type = ping").value();
  spec.rules = {rule};
  arch.deploy_service(spec);
  arch.run_for(duration::seconds(30));

  int delivered = 0;
  std::uint64_t delivered_trace = 0;
  arch.subscribe_user(5, event::parse_filter("type = pong").value(),
                      [&](const Event& e) {
                        ++delivered;
                        delivered_trace = e.trace_id();
                      });
  arch.run_for(duration::seconds(5));

  for (int i = 0; i < 5; ++i) {
    Event ping("ping");
    ping.set("n", i);
    arch.publish(3, ping);
    arch.run_for(duration::seconds(2));
  }
  arch.run_for(duration::seconds(5));

  ASSERT_GT(delivered, 0);
  // Delivered events carry their trace coordinates as attributes.
  EXPECT_NE(delivered_trace, 0u);

  const obs::TraceCollector* tc = arch.network().tracer();
  ASSERT_NE(tc, nullptr);

  // Some single trace must witness the whole path: broker routing, the
  // pipeline handing the event to a component, and final delivery.
  // Trace ids are keyed hashes (not dense), so enumerate via trace_ids.
  bool full_path = false;
  for (std::uint64_t tid : tc->trace_ids()) {
    if (full_path) break;
    bool route = false, put = false, deliver = false;
    for (const obs::Span* s : tc->trace(tid)) {
      route |= s->component == "broker" && s->action == "route";
      put |= s->component == "pipeline" && s->action == "put";
      deliver |= s->component == "client" && s->action == "deliver";
    }
    full_path = route && put && deliver;
  }
  EXPECT_TRUE(full_path);

  // Derived per-delivery metrics exist and crossed at least one wire.
  const auto dm = tc->delivery_metrics();
  ASSERT_FALSE(dm.empty());
  bool some_hops = false;
  for (const auto& m : dm) some_hops |= m.hops > 0;
  EXPECT_TRUE(some_hops);

  // The export validates.
  std::istringstream in(tc->chrome_json());
  const auto problems = obs::validate_chrome_trace(in);
  EXPECT_TRUE(problems.empty()) << (problems.empty() ? "" : problems.front());
}

// --- Slot-aware tracing: keyed sampling + merged ids ---

TEST(Trace, KeyedSamplingIsDeterministicAcrossSlots) {
  // Two collectors fed the same task keys from *different* slots must
  // make identical sampling decisions and mint identical trace ids: the
  // decision mixes (key, per-task call index) only, never the slot.
  obs::TraceCollector t1;
  obs::TraceCollector t2;
  obs::TraceCollector::TaskRef r1{1, {100, 1, 7}};
  obs::TraceCollector::TaskRef r2{2, {100, 1, 7}};
  t1.bind_slots(3, [&r1] { return r1; });
  t2.bind_slots(3, [&r2] { return r2; });
  t1.set_sample_every(3);
  t2.set_sample_every(3);

  const obs::TraceCollector::TaskKey keys[] = {
      {100, 1, 7}, {100, 2, 1}, {250, 1, 8}, {250, 3, 1}, {900, 2, 4}};
  int admitted = 0;
  for (const auto& k : keys) {
    r1.key = k;
    r2.key = k;
    for (int call = 0; call < 4; ++call) {  // several candidates per task
      const obs::TraceContext a = t1.start_trace();
      const obs::TraceContext b = t2.start_trace();
      EXPECT_EQ(a.active(), b.active());
      EXPECT_EQ(a.trace_id, b.trace_id);
      if (a.active()) ++admitted;
    }
  }
  EXPECT_GT(admitted, 0);
  EXPECT_LT(admitted, 20);  // sampling actually rejected some
}

TEST(Trace, TraceIdsEnumeratesRecordedTraces) {
  // Keyed trace ids are 48-bit hashes, not dense counters: consumers
  // enumerate via trace_ids(), which lists each recorded trace once.
  obs::TraceCollector tc;
  obs::TraceCollector::TaskRef ref{1, {50, 2, 1}};
  tc.bind_slots(2, [&ref] { return ref; });

  const obs::TraceContext a = tc.start_trace();
  ref.key = {60, 3, 1};
  const obs::TraceContext b = tc.start_trace();
  ASSERT_TRUE(a.active());
  ASSERT_TRUE(b.active());
  EXPECT_NE(a.trace_id, b.trace_id);
  const std::uint64_t sa = tc.begin(a, 0, "client", "publish", 50);
  tc.begin({a.trace_id, sa}, 0, "net", "wire", 50);
  tc.begin(b, 1, "client", "publish", 60);

  const std::vector<std::uint64_t> ids = tc.trace_ids();
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_TRUE(std::is_sorted(ids.begin(), ids.end()));
  EXPECT_NE(std::find(ids.begin(), ids.end(), a.trace_id), ids.end());
  EXPECT_NE(std::find(ids.begin(), ids.end(), b.trace_id), ids.end());
  for (const std::uint64_t id : ids) {
    EXPECT_FALSE(tc.trace(id).empty());
  }
}

// --- Scheduler profiler ---

TEST(Profiler, BucketMappingCoversSubsystems) {
  using obs::ProfileBucket;
  EXPECT_EQ(obs::bucket_for("broker", "route"), ProfileBucket::kBrokerRoute);
  EXPECT_EQ(obs::bucket_for("broker", "match"), ProfileBucket::kBrokerMatch);
  EXPECT_EQ(obs::bucket_for("store", "put"), ProfileBucket::kStore);
  EXPECT_EQ(obs::bucket_for("overlay", "route"), ProfileBucket::kOverlay);
  EXPECT_EQ(obs::bucket_for("net", "wire"), ProfileBucket::kTransport);
  EXPECT_EQ(obs::bucket_for("pipeline", "put"), ProfileBucket::kPipeline);
  EXPECT_EQ(obs::bucket_for("client", "deliver"), ProfileBucket::kClient);
  EXPECT_EQ(obs::bucket_for("mystery", "zap"), ProfileBucket::kOther);
  // Every bucket has a distinct non-empty metrics name.
  std::set<std::string> names;
  for (std::size_t b = 0; b < obs::kProfileBucketCount; ++b) {
    const auto n = obs::bucket_name(static_cast<ProfileBucket>(b));
    EXPECT_FALSE(n.empty());
    names.insert(std::string(n));
  }
  EXPECT_EQ(names.size(), obs::kProfileBucketCount);
}

TEST(Profiler, TaskAndEpochAttributionIsExact) {
  // note_task / note_epoch / note_serialization / note_merge take
  // explicit durations, so attribution is checkable exactly: an epoch
  // of 150ns where slot 0 was busy 100ns parked it for 50ns.
  obs::Profiler p;
  p.bind_slots(3);  // shards 0,1 + global slot 2
  p.note_task(0, 100);
  p.note_task(0, 20);
  p.note_task(1, 30);
  p.note_epoch(150, 2);
  p.note_serialization(2, 40);
  p.note_merge(2, 5);

  EXPECT_EQ(p.counters(0).tasks, 2u);
  EXPECT_EQ(p.counters(0).busy_ns, 120u);
  EXPECT_EQ(p.counters(0).barrier_wait_ns, 30u);
  EXPECT_EQ(p.counters(1).busy_ns, 30u);
  EXPECT_EQ(p.counters(1).barrier_wait_ns, 120u);
  EXPECT_EQ(p.counters(2).barrier_wait_ns, 0u);  // global slot: not a host shard
  EXPECT_EQ(p.counters(2).serialization_ns, 40u);
  EXPECT_EQ(p.counters(2).merge_ns, 5u);

  const obs::Profiler::SlotCounters t = p.totals();
  EXPECT_EQ(t.tasks, 3u);
  EXPECT_EQ(t.busy_ns, 150u);
  EXPECT_EQ(t.barrier_wait_ns, 150u);
  EXPECT_EQ(t.serialization_ns, 40u);

  // A second epoch starts from a clean per-epoch busy mark.
  p.note_task(1, 10);
  p.note_epoch(10, 2);
  EXPECT_EQ(p.counters(1).barrier_wait_ns, 120u);
  EXPECT_EQ(p.counters(0).barrier_wait_ns, 40u);

  p.reset();
  EXPECT_EQ(p.totals().tasks, 0u);
  EXPECT_EQ(p.totals().busy_ns, 0u);
  EXPECT_EQ(p.slot_count(), 3u);  // layout survives reset
}

TEST(Profiler, ScopeNestingChargesSelfTime) {
  // An inner scope pauses its parent: after running transport work
  // inside a broker-route scope, both buckets carry time and no bucket
  // was double-charged (their sum can't exceed the total elapsed wall
  // time, which double-counting would make possible).
  obs::Profiler p;
  p.bind_slots(1);
  const auto spin = [] {
    const auto until = std::chrono::steady_clock::now() + std::chrono::microseconds(200);
    while (std::chrono::steady_clock::now() < until) {
    }
  };
  const auto wall0 = std::chrono::steady_clock::now();
  {
    obs::Profiler::Scope route(&p, 0, obs::ProfileBucket::kBrokerRoute);
    spin();
    {
      obs::Profiler::Scope wire(&p, 0, obs::ProfileBucket::kTransport);
      spin();
    }
    spin();
  }
  const auto elapsed_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - wall0)
          .count());

  const auto& c = p.counters(0);
  const std::uint64_t route_ns =
      c.bucket_ns[static_cast<std::size_t>(obs::ProfileBucket::kBrokerRoute)];
  const std::uint64_t wire_ns =
      c.bucket_ns[static_cast<std::size_t>(obs::ProfileBucket::kTransport)];
  EXPECT_GT(route_ns, 0u);
  EXPECT_GT(wire_ns, 0u);
  EXPECT_LE(route_ns + wire_ns, elapsed_ns);

  // Null-profiler and out-of-range slots are inert no-ops.
  obs::Profiler::Scope null_scope(nullptr, 0, obs::ProfileBucket::kStore);
  obs::Profiler::Scope oob_scope(&p, 99, obs::ProfileBucket::kStore);
}

TEST(Profiler, SampleRingHonorsRetention) {
  obs::Profiler p;
  p.bind_slots(2);
  p.set_sample_retention(3);
  for (int i = 1; i <= 7; ++i) {
    p.note_task(0, 10);
    p.sample(i * 100);
  }
  ASSERT_EQ(p.samples().size(), 3u);
  EXPECT_EQ(p.samples().front().t, 500);
  EXPECT_EQ(p.samples().back().t, 700);
  // Samples are cumulative: the newest carries all 7 tasks.
  EXPECT_EQ(p.samples().back().slots[0].tasks, 7u);
}

TEST(Metrics, ExportProfilerEmitsTotalsAndPerSlotKeys) {
  obs::Profiler p;
  p.bind_slots(2);
  p.note_task(0, 5000);
  p.note_serialization(1, 2000);
  sim::MetricsRegistry reg;
  obs::export_profiler(reg, "sched", p);
  EXPECT_EQ(reg.counter("sched.total.tasks"), 1u);
  EXPECT_EQ(reg.counter("sched.total.busy_us"), 5u);
  EXPECT_EQ(reg.counter("sched.slot0.busy_us"), 5u);
  EXPECT_EQ(reg.counter("sched.slot1.serialization_us"), 2u);
  EXPECT_EQ(reg.counter("sched.total.broker_route_us"), 0u);
}

// --- MetricsHub timeline ---

TEST(Metrics, HubTimelineSamplesAtVirtualInterval) {
  sim::Scheduler sched;
  std::uint64_t ticks = 0;
  sched.every(duration::millis(1), [&ticks] { ++ticks; });

  obs::MetricsHub hub;
  hub.add_source([&ticks](sim::MetricsRegistry& reg) { reg.add("app.ticks", ticks); });
  hub.start_timeline(sched, duration::millis(10), /*retention=*/4);
  EXPECT_TRUE(hub.timeline_active());
  sched.run_for(duration::millis(100));

  // 10 samples fired; the ring kept the last 4, at 70/80/90/100 ms.
  ASSERT_EQ(hub.timeline().size(), 4u);
  EXPECT_EQ(hub.timeline().front().t, duration::millis(70));
  EXPECT_EQ(hub.timeline().back().t, duration::millis(100));
  // Each entry snapshots the sources at its virtual time.  At a shared
  // timestamp the sampler (older periodic task) runs before the tick
  // task, so the 70 ms entry still sees 69 completed ticks.
  EXPECT_EQ(hub.timeline().front().metrics.counter("app.ticks"), 69u);
  EXPECT_EQ(hub.timeline().back().metrics.counter("app.ticks"), 99u);

  std::ostringstream out;
  hub.write_timeline_jsonl(out);
  const std::string jsonl = out.str();
  EXPECT_EQ(std::count(jsonl.begin(), jsonl.end(), '\n'), 4);
  EXPECT_NE(jsonl.find("{\"t_us\":70000,\"metrics\":"), std::string::npos);

  // Stopping cancels the periodic task: time advances, no new entries.
  hub.stop_timeline();
  EXPECT_FALSE(hub.timeline_active());
  sched.run_for(duration::millis(50));
  EXPECT_EQ(hub.timeline().size(), 4u);
  hub.clear_timeline();
  EXPECT_TRUE(hub.timeline().empty());
}

TEST(Metrics, FacadeTimelineKnobsRecordSnapshots) {
  gloss::ActiveArchitecture::Config cfg;
  cfg.hosts = 8;
  cfg.brokers = 2;
  cfg.regions = 2;
  cfg.settle_time = duration::seconds(5);
  cfg.profiling = true;
  cfg.timeline_interval = duration::seconds(1);
  cfg.timeline_retention = 8;
  gloss::ActiveArchitecture arch(cfg);
  arch.run_for(duration::seconds(20));

  ASSERT_EQ(arch.metrics_hub().timeline().size(), 8u);
  const auto& last = arch.metrics_hub().timeline().back();
  // Profiling knob wired through: scheduler attribution rides along.
  EXPECT_GT(last.metrics.counter("sched.total.tasks"), 0u);
  // And the periodic advertiser kept the bus busy across the window.
  EXPECT_GT(last.metrics.counter("net.messages_sent"), 0u);
}

// --- Validator: counter tracks ---

TEST(TraceValidator, AcceptsCounterOnlyTrace) {
  // A profiling-only export (no tracing) has counter tracks but no
  // spans; that must validate.
  std::istringstream in(R"({"traceEvents":[
    {"name":"process_name","ph":"M","pid":1000000,"args":{"name":"scheduler"}},
    {"name":"thread_name","ph":"M","pid":1000000,"tid":0,"args":{"name":"shard 0"}},
    {"name":"sched","ph":"C","ts":0,"pid":1000000,"tid":0,"args":{"busy_us":1}},
    {"name":"sched","ph":"C","ts":5,"pid":1000000,"tid":0,"args":{"busy_us":2}}]})");
  const auto problems = obs::validate_chrome_trace(in);
  EXPECT_TRUE(problems.empty()) << (problems.empty() ? "" : problems.front());
}

TEST(TraceValidator, RejectsBackwardsCounterTimestamps) {
  std::istringstream in(R"({"traceEvents":[
    {"name":"process_name","ph":"M","pid":1,"args":{"name":"p"}},
    {"name":"thread_name","ph":"M","pid":1,"tid":0,"args":{"name":"t"}},
    {"name":"sched","ph":"C","ts":10,"pid":1,"tid":0,"args":{"busy_us":1}},
    {"name":"sched","ph":"C","ts":4,"pid":1,"tid":0,"args":{"busy_us":2}}]})");
  EXPECT_FALSE(obs::validate_chrome_trace(in).empty());
}

TEST(TraceValidator, RejectsOrphanCounterTrack) {
  // Counter events whose (pid, tid) no thread_name metadata claims.
  std::istringstream in(R"({"traceEvents":[
    {"name":"sched","ph":"C","ts":0,"pid":1,"tid":9,"args":{"busy_us":1}}]})");
  const auto problems = obs::validate_chrome_trace(in);
  ASSERT_FALSE(problems.empty());
}

TEST(TraceValidator, RejectsNonNumericCounterValues) {
  std::istringstream in(R"({"traceEvents":[
    {"name":"process_name","ph":"M","pid":1,"args":{"name":"p"}},
    {"name":"thread_name","ph":"M","pid":1,"tid":0,"args":{"name":"t"}},
    {"name":"sched","ph":"C","ts":0,"pid":1,"tid":0,"args":{"busy_us":"lots"}}]})");
  EXPECT_FALSE(obs::validate_chrome_trace(in).empty());
}

}  // namespace
}  // namespace aa
