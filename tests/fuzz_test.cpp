// Robustness (fuzz/property) tests: every parser and codec in the
// system must fail soft on malformed input — a wide-area architecture
// feeds them bytes from other administrative domains (§4.7's open
// interfaces cut both ways).
#include <gtest/gtest.h>

#include "bundle/bundle.hpp"
#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "event/filter_parser.hpp"
#include "match/rule.hpp"
#include "storage/erasure.hpp"
#include "xml/path.hpp"
#include "xml/xml.hpp"

namespace aa {
namespace {

std::string random_bytes_string(Rng& rng, std::size_t max_len) {
  std::string s;
  const std::size_t n = rng.below(max_len + 1);
  s.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    s.push_back(static_cast<char>(rng.below(256)));
  }
  return s;
}

std::string random_xmlish(Rng& rng, std::size_t max_len) {
  static const char* kAtoms[] = {"<",  ">",   "</", "/>", "a",    "bc",  "=",
                                 "\"", "'",   " ",  "&",  "&lt;", ";",   "<!--",
                                 "-->", "<?", "?>", "\n", "x=\"y\"", "zz"};
  std::string s;
  const std::size_t n = rng.below(max_len + 1);
  for (std::size_t i = 0; i < n; ++i) {
    s += kAtoms[rng.below(std::size(kAtoms))];
  }
  return s;
}

/// Applies `count` random single-character mutations.
std::string mutate(std::string s, Rng& rng, int count) {
  for (int i = 0; i < count && !s.empty(); ++i) {
    const std::size_t pos = rng.below(s.size());
    switch (rng.below(3)) {
      case 0: s[pos] = static_cast<char>(rng.below(256)); break;
      case 1: s.erase(pos, 1); break;
      default: s.insert(pos, 1, static_cast<char>(rng.below(128)));
    }
  }
  return s;
}

class FuzzCase : public ::testing::TestWithParam<int> {
 protected:
  Rng rng{static_cast<std::uint64_t>(GetParam()) * 2654435761u + 1};
};

TEST_P(FuzzCase, XmlParserNeverCrashes) {
  for (int i = 0; i < 300; ++i) {
    (void)xml::parse(random_bytes_string(rng, 200));
    (void)xml::parse(random_xmlish(rng, 60));
  }
}

TEST_P(FuzzCase, XmlParserOnMutatedValidDocuments) {
  const std::string valid =
      R"(<event a="1"><attr name="x" type="int" value="3"/><nested deep="y">text &amp; more</nested></event>)";
  for (int i = 0; i < 300; ++i) {
    const std::string doc = mutate(valid, rng, 1 + static_cast<int>(rng.below(6)));
    auto r = xml::parse(doc);
    if (r.is_ok()) {
      // Whatever parsed must re-serialise and re-parse to itself.
      auto again = xml::parse(xml::to_string(r.value()));
      ASSERT_TRUE(again.is_ok()) << doc;
      EXPECT_TRUE(again.value() == r.value());
    }
  }
}

TEST_P(FuzzCase, FilterParserNeverCrashes) {
  static const char* kAtoms[] = {"type", "=",  "!=",  "<",        "<=",     ">",
                                 "and",  "or", "5",   "5.5",      "\"s\"",  "'",
                                 "exists", "prefix", "contains", "celsius", "\"", " "};
  for (int i = 0; i < 400; ++i) {
    std::string s;
    const std::size_t n = rng.below(12);
    for (std::size_t k = 0; k < n; ++k) {
      s += kAtoms[rng.below(std::size(kAtoms))];
      s += ' ';
    }
    auto f = event::parse_filter(s);
    if (f.is_ok()) {
      // A parsed filter must be describable and re-parseable.
      auto back = event::parse_filter(f.value().describe());
      if (!f.value().empty()) {
        EXPECT_TRUE(back.is_ok()) << f.value().describe();
      }
    }
    (void)event::parse_filter(random_bytes_string(rng, 60));
  }
}

TEST_P(FuzzCase, EventParserOnMutatedInput) {
  event::Event e("user-location");
  e.set("user", "bob").set("lat", 56.34).set("ok", true).set("n", 7);
  const std::string valid = e.to_xml_string();
  for (int i = 0; i < 300; ++i) {
    (void)event::Event::parse(mutate(valid, rng, 1 + static_cast<int>(rng.below(8))));
  }
}

TEST_P(FuzzCase, BundleParserOnMutatedInput) {
  xml::Element config("config");
  config.set_attribute("filter", "a > 1");
  bundle::CodeBundle b("fuzzed", "pipe.filter", config);
  b.set_payload(to_bytes("payload-bytes"));
  b.require_capability("run.x");
  const std::string valid = b.to_xml_string();
  for (int i = 0; i < 300; ++i) {
    (void)bundle::CodeBundle::parse(mutate(valid, rng, 1 + static_cast<int>(rng.below(8))));
  }
}

TEST_P(FuzzCase, RuleParserOnMutatedInput) {
  match::Rule rule;
  rule.name = "r";
  rule.triggers = {{"a", event::parse_filter("type = \"x\" and v > 3").value(),
                    duration::minutes(1)}};
  rule.joins = {{match::Operand::ref("a", "v"), event::Op::kGe,
                 match::Operand::lit(event::AttrValue(2.5))}};
  rule.emit.type = "out";
  rule.emit.sets = {{"v", std::nullopt, "a", "v"}};
  const std::string valid = rule.to_xml_string();
  for (int i = 0; i < 300; ++i) {
    (void)match::Rule::parse(mutate(valid, rng, 1 + static_cast<int>(rng.below(8))));
  }
}

TEST_P(FuzzCase, BufReaderFailsSoftOnRandomBytes) {
  for (int i = 0; i < 300; ++i) {
    Bytes data(rng.below(64));
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.below(256));
    BufReader r(data);
    // Random typed reads must never touch out-of-bounds memory.
    for (int k = 0; k < 8; ++k) {
      switch (rng.below(6)) {
        case 0: (void)r.u8(); break;
        case 1: (void)r.u32(); break;
        case 2: (void)r.u64(); break;
        case 3: (void)r.str(); break;
        case 4: (void)r.bytes(); break;
        default: (void)r.uid(); break;
      }
    }
  }
}

TEST_P(FuzzCase, ErasureDecodeOnCorruptedFragments) {
  storage::ErasureCoder coder(4, 2);
  Bytes object(200);
  for (auto& b : object) b = static_cast<std::uint8_t>(rng.below(256));
  for (int i = 0; i < 100; ++i) {
    auto frags = coder.encode(object);
    // Corrupt: drop, truncate, scramble indices, mangle lengths.
    if (rng.chance(0.5) && !frags.empty()) frags.erase(frags.begin() + static_cast<std::ptrdiff_t>(rng.below(frags.size())));
    if (rng.chance(0.5) && !frags.empty()) {
      auto& f = frags[rng.below(frags.size())];
      f.data.resize(rng.below(f.data.size() + 1));
    }
    if (rng.chance(0.5) && !frags.empty()) {
      frags[rng.below(frags.size())].index = static_cast<int>(rng.below(20)) - 5;
    }
    (void)coder.decode(frags);  // must not crash; may fail or mis-decode
  }
}

TEST_P(FuzzCase, PathCompilerNeverCrashes) {
  for (int i = 0; i < 300; ++i) {
    (void)xml::Path::compile(random_bytes_string(rng, 40));
    (void)xml::Path::compile(random_xmlish(rng, 20));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzCase, ::testing::Range(0, 8));

// --- Uid160 algebra properties ---

TEST(Uid160Property, CwDistancesAreComplementary) {
  // cw(a->b) + cw(b->a) == 0 (mod 2^160) for distinct a, b.
  Rng rng(77);
  for (int i = 0; i < 300; ++i) {
    const Uid160 a = rng.uid(), b = rng.uid();
    if (a == b) continue;
    const Uid160 ab = a.ring_distance_cw(b);
    const Uid160 ba = b.ring_distance_cw(a);
    // Add the byte arrays with carry; expect exact wrap to zero.
    std::array<std::uint8_t, 20> sum{};
    int carry = 0;
    for (int k = 19; k >= 0; --k) {
      const int s = ab.bytes()[static_cast<std::size_t>(k)] + ba.bytes()[static_cast<std::size_t>(k)] + carry;
      sum[static_cast<std::size_t>(k)] = static_cast<std::uint8_t>(s & 0xFF);
      carry = s >> 8;
    }
    EXPECT_EQ(carry, 1);  // wrapped exactly once
    EXPECT_TRUE(Uid160(sum).is_zero());
  }
}

TEST(Uid160Property, RingDistanceSymmetricAndBounded) {
  Rng rng(78);
  Uid160 half;
  half = half.with_digit(0, 8);  // 2^159
  for (int i = 0; i < 300; ++i) {
    const Uid160 a = rng.uid(), b = rng.uid();
    EXPECT_EQ(a.ring_distance(b), b.ring_distance(a));
    EXPECT_LE(a.ring_distance(b), half);  // min(cw, ccw) <= half the ring
  }
}

}  // namespace
}  // namespace aa
