// Tests for the P2P event service layers added on top of the core
// stack: Siena's advertisement-forwarding semantics, and the
// Scribe-style rendezvous pub/sub over the Plaxton overlay (§4.1/§5:
// "Both classes of events are supported by a Siena-like P2P system").
#include <gtest/gtest.h>

#include <memory>

#include "pubsub/scribe.hpp"
#include "pubsub/siena_network.hpp"
#include "sim/churn.hpp"

namespace aa::pubsub {
namespace {

using event::Event;
using event::Filter;
using event::Op;

Event temp_event(double celsius) {
  Event e("temperature");
  e.set("celsius", celsius);
  return e;
}

// --- Advertisement-based subscription forwarding (Siena semantics) ---

struct AdvFixture {
  sim::Scheduler sched;
  std::shared_ptr<sim::Topology> topo;
  sim::Network net;
  SienaNetwork ps;

  AdvFixture()
      : topo(std::make_shared<sim::UniformTopology>(16, duration::millis(5))),
        net(sched, topo),
        ps(net, {0, 1, 2, 3}) {
    // Chain: 0 - 1 - 2 - 3
    EXPECT_TRUE(ps.connect(0, 1).is_ok());
    EXPECT_TRUE(ps.connect(1, 2).is_ok());
    EXPECT_TRUE(ps.connect(2, 3).is_ok());
    ps.set_advertisement_forwarding(true);
    ps.attach_client(10, 0);  // publisher at one end
    ps.attach_client(11, 3);  // subscriber at the other
    ps.attach_client(12, 1);  // bystander broker 1 client
  }
};

TEST(Advertisements, SubscriptionChasesAdvertisement) {
  AdvFixture f;
  f.ps.advertise(10, Filter().where("type", Op::kEq, "temperature"));
  f.sched.run();
  int got = 0;
  f.ps.subscribe(11, Filter().where("type", Op::kEq, "temperature"),
                 [&](const Event&) { ++got; });
  f.sched.run();
  f.ps.publish(10, temp_event(20.0));
  f.sched.run();
  EXPECT_EQ(got, 1);
}

TEST(Advertisements, NonOverlappingSubscriptionNotForwarded) {
  AdvFixture f;
  f.ps.advertise(10, Filter().where("type", Op::kEq, "temperature"));
  f.sched.run();
  // A subscription no advertised publisher can satisfy stays at its
  // access broker.
  f.ps.subscribe(11, Filter().where("type", Op::kEq, "stock-tick"), [](const Event&) {});
  f.sched.run();
  EXPECT_EQ(f.ps.broker(0)->table_size(), 0u);
  EXPECT_EQ(f.ps.broker(1)->table_size(), 0u);
  EXPECT_EQ(f.ps.broker(2)->table_size(), 0u);
  EXPECT_EQ(f.ps.broker(3)->table_size(), 1u);  // only the access broker
}

TEST(Advertisements, SubscribeBeforeAdvertiseHealsOnAdvert) {
  AdvFixture f;
  int got = 0;
  // Subscription first: it cannot propagate yet (no advertisement).
  f.ps.subscribe(11, Filter().where("type", Op::kEq, "temperature"),
                 [&](const Event&) { ++got; });
  f.sched.run();
  EXPECT_EQ(f.ps.broker(0)->table_size(), 0u);
  // The advertisement unlocks the pending subscription along its path.
  f.ps.advertise(10, Filter().where("type", Op::kEq, "temperature"));
  f.sched.run();
  EXPECT_EQ(f.ps.broker(0)->table_size(), 1u);
  f.ps.publish(10, temp_event(25.0));
  f.sched.run();
  EXPECT_EQ(got, 1);
}

TEST(Advertisements, ReducesSubscriptionStateVersusFlooding) {
  // Many disjoint subscriptions, one advertised event class: with
  // advertisement forwarding, only the overlapping subscription spreads.
  AdvFixture f;
  f.ps.advertise(10, Filter().where("type", Op::kEq, "temperature"));
  f.sched.run();
  for (int i = 0; i < 8; ++i) {
    f.ps.subscribe(11, Filter().where("type", Op::kEq, "kind" + std::to_string(i)),
                   [](const Event&) {});
  }
  f.ps.subscribe(11, Filter().where("type", Op::kEq, "temperature"), [](const Event&) {});
  f.sched.run();
  // Broker 0 (the publisher's end) holds only the one relevant entry.
  EXPECT_EQ(f.ps.broker(0)->table_size(), 1u);
  // The access broker holds all 9.
  EXPECT_EQ(f.ps.broker(3)->table_size(), 9u);
}

// --- ScribeNetwork over the overlay ---

struct ScribeFixture {
  sim::Scheduler sched;
  std::shared_ptr<sim::Topology> topo;
  sim::Network net;
  overlay::OverlayNetwork overlay;

  explicit ScribeFixture(std::size_t hosts = 24, SimDuration maintenance = 0)
      : topo(std::make_shared<sim::UniformTopology>(hosts, duration::millis(5))),
        net(sched, topo),
        overlay(net, params(maintenance)) {
    std::vector<sim::HostId> hs;
    for (sim::HostId h = 0; h < hosts; ++h) hs.push_back(h);
    overlay.build_ring(hs);
  }
  static overlay::OverlayNetwork::Params params(SimDuration maintenance) {
    overlay::OverlayNetwork::Params p;
    p.maintenance_period = maintenance;
    return p;
  }
};

TEST(Scribe, TopicExtraction) {
  EXPECT_EQ(ScribeNetwork::topic_of_filter(Filter().where("type", Op::kEq, "temperature")),
            "temperature");
  EXPECT_EQ(ScribeNetwork::topic_of_filter(Filter().where("celsius", Op::kGt, 5.0)),
            ScribeNetwork::kCatchAllTopic);
  EXPECT_EQ(ScribeNetwork::topic_of_type(""), ScribeNetwork::kCatchAllTopic);
}

TEST(Scribe, DeliversToSubscriber) {
  ScribeFixture f;
  ScribeNetwork::Params sp;
  sp.refresh_period = 0;
  ScribeNetwork scribe(f.net, f.overlay, sp);
  int got = 0;
  scribe.subscribe(5, Filter().where("type", Op::kEq, "temperature"),
                   [&](const Event& e) {
                     EXPECT_DOUBLE_EQ(e.get_real("celsius").value(), 21.5);
                     ++got;
                   });
  f.sched.run();  // joins settle
  scribe.publish(17, temp_event(21.5));
  f.sched.run();
  EXPECT_EQ(got, 1);
}

TEST(Scribe, ContentFilteringAtTheEdge) {
  ScribeFixture f;
  ScribeNetwork::Params sp;
  sp.refresh_period = 0;
  ScribeNetwork scribe(f.net, f.overlay, sp);
  int hot = 0, all = 0;
  scribe.subscribe(3, Filter().where("type", Op::kEq, "temperature").where("celsius", Op::kGt, 25.0),
                   [&](const Event&) { ++hot; });
  scribe.subscribe(4, Filter().where("type", Op::kEq, "temperature"),
                   [&](const Event&) { ++all; });
  f.sched.run();
  scribe.publish(10, temp_event(20.0));
  f.sched.run();
  EXPECT_EQ(hot, 0);
  EXPECT_EQ(all, 1);
}

TEST(Scribe, ManySubscribersShareTree) {
  ScribeFixture f;
  ScribeNetwork::Params sp;
  sp.refresh_period = 0;
  ScribeNetwork scribe(f.net, f.overlay, sp);
  int got = 0;
  for (sim::HostId h = 0; h < 12; ++h) {
    scribe.subscribe(h, Filter().where("type", Op::kEq, "temperature"),
                     [&](const Event&) { ++got; });
  }
  f.sched.run();
  f.net.reset_stats();
  scribe.publish(20, temp_event(5.0));
  f.sched.run();
  EXPECT_EQ(got, 12);
  // Tree dissemination: messages well below one per (publisher,
  // subscriber) unicast fan-out through the rendezvous would be 12;
  // tree sharing keeps the multicast fan-out bounded by distinct tree
  // edges.
  EXPECT_GT(scribe.stats().multicast_messages, 0u);
}

TEST(Scribe, CatchAllSubscribersSeeTypedEvents) {
  ScribeFixture f;
  ScribeNetwork::Params sp;
  sp.refresh_period = 0;
  ScribeNetwork scribe(f.net, f.overlay, sp);
  int got = 0;
  scribe.subscribe(2, Filter().where("celsius", Op::kExists), [&](const Event&) { ++got; });
  f.sched.run();
  scribe.publish(9, temp_event(7.0));
  f.sched.run();
  EXPECT_EQ(got, 1);
}

TEST(Scribe, UnsubscribeStopsDelivery) {
  ScribeFixture f;
  ScribeNetwork::Params sp;
  sp.refresh_period = 0;
  ScribeNetwork scribe(f.net, f.overlay, sp);
  int got = 0;
  const auto id = scribe.subscribe(5, Filter().where("type", Op::kEq, "temperature"),
                                   [&](const Event&) { ++got; });
  f.sched.run();
  scribe.unsubscribe(5, id);
  scribe.publish(17, temp_event(1.0));
  f.sched.run();
  EXPECT_EQ(got, 0);
}

TEST(Scribe, DuplicatePublishesBothDelivered) {
  // The cycle guard must not suppress legitimate repeats of identical
  // content.
  ScribeFixture f;
  ScribeNetwork::Params sp;
  sp.refresh_period = 0;
  ScribeNetwork scribe(f.net, f.overlay, sp);
  int got = 0;
  scribe.subscribe(5, Filter().where("type", Op::kEq, "temperature"),
                   [&](const Event&) { ++got; });
  f.sched.run();
  scribe.publish(17, temp_event(3.0));
  scribe.publish(17, temp_event(3.0));  // identical XML
  f.sched.run();
  EXPECT_EQ(got, 2);
}

TEST(Scribe, SurvivesForwarderCrashViaRefresh) {
  ScribeFixture f(24, duration::seconds(2));  // overlay gossip on
  ScribeNetwork::Params sp;
  sp.refresh_period = duration::seconds(5);
  ScribeNetwork scribe(f.net, f.overlay, sp);
  int got = 0;
  scribe.subscribe(5, Filter().where("type", Op::kEq, "temperature"),
                   [&](const Event&) { ++got; });
  f.sched.run_for(duration::seconds(5));

  // Kill an interior forwarder of the temperature tree (any non-client,
  // non-rendezvous node holding children).
  const auto key = ScribeNetwork::rendezvous_key("temperature");
  const sim::HostId root = f.overlay.true_root(key).host;
  sim::ChurnInjector churn(f.net, {});
  sim::HostId victim = sim::kNoHost;
  for (sim::HostId h = 0; h < 24; ++h) {
    if (h == 5 || h == root) continue;
    if (scribe.children_at(h, "temperature") > 0) {
      victim = h;
      break;
    }
  }
  if (victim != sim::kNoHost) churn.kill(victim, false);

  // Refresh joins rebuild the path around the dead forwarder.
  f.sched.run_for(duration::seconds(40));
  scribe.publish(17, temp_event(9.0));
  f.sched.run_for(duration::seconds(20));
  EXPECT_GE(got, 1);
}

}  // namespace
}  // namespace aa::pubsub
