// Tests for Cingal-style code push: bundle XML round-trip, sealing,
// thin-server verification (authentication, capabilities, unknown
// components), install/replace/uninstall lifecycle, and network push
// via the deployer.
#include <gtest/gtest.h>

#include <memory>

#include "bundle/deployer.hpp"
#include "bundle/thin_server.hpp"

namespace aa::bundle {
namespace {

CodeBundle make_bundle(const std::string& name = "matchlet-1") {
  xml::Element config("config");
  config.set_attribute("filter", "type = temperature");
  CodeBundle b(name, "filter-component", config);
  b.require_capability("run.matchlet");
  b.set_payload(to_bytes("pretend native code bytes"));
  return b;
}

TEST(CodeBundle, XmlRoundTrip) {
  const CodeBundle b = make_bundle();
  auto back = CodeBundle::parse(b.to_xml_string());
  ASSERT_TRUE(back.is_ok()) << back.status().to_string();
  EXPECT_EQ(back.value().name(), b.name());
  EXPECT_EQ(back.value().component_type(), b.component_type());
  EXPECT_EQ(back.value().version(), b.version());
  EXPECT_EQ(back.value().payload(), b.payload());
  EXPECT_EQ(back.value().required_capabilities(), b.required_capabilities());
  EXPECT_EQ(back.value().config().attribute("filter"), b.config().attribute("filter"));
  EXPECT_EQ(back.value().id(), b.id());
}

TEST(CodeBundle, IdChangesWithContent) {
  CodeBundle a = make_bundle();
  CodeBundle b = make_bundle();
  b.set_version(2);
  EXPECT_NE(a.id(), b.id());
}

TEST(CodeBundle, SealDependsOnSecretAndContent) {
  const CodeBundle b = make_bundle();
  EXPECT_NE(b.seal("secret-a"), b.seal("secret-b"));
  CodeBundle tampered = b;
  tampered.set_payload(to_bytes("evil"));
  EXPECT_NE(b.seal("s"), tampered.seal("s"));
}

TEST(CodeBundle, ParseRejectsMalformed) {
  EXPECT_FALSE(CodeBundle::parse("<notabundle/>").is_ok());
  EXPECT_FALSE(CodeBundle::parse("<bundle name=\"x\"/>").is_ok());  // no component
  EXPECT_FALSE(CodeBundle::parse(
                   "<bundle name=\"x\" component=\"y\"><payload>zz</payload></bundle>")
                   .is_ok());  // bad hex
}

struct Fixture {
  sim::Scheduler sched;
  std::shared_ptr<sim::Topology> topo = std::make_shared<sim::UniformTopology>(8, 1000);
  sim::Network net{sched, topo};
  ThinServerRuntime runtime{net, "gloss-authority-secret"};
  int installs = 0;
  int stops = 0;

  Fixture() {
    runtime.register_installer("filter-component",
                               [this](const CodeBundle&, sim::HostId) {
                                 ++installs;
                                 return Result<std::function<void()>>(
                                     std::function<void()>([this]() { ++stops; }));
                               });
  }
};

TEST(ThinServer, InstallHappyPath) {
  Fixture f;
  f.runtime.start_server(1, {"run.matchlet"});
  const CodeBundle b = make_bundle();
  EXPECT_EQ(f.runtime.install_local(1, b, b.seal("gloss-authority-secret")),
            DeployResult::kInstalled);
  EXPECT_EQ(f.installs, 1);
  ASSERT_NE(f.runtime.installation(1, "matchlet-1"), nullptr);
  EXPECT_NE(f.runtime.stored_bundle(1, b.id()), nullptr);
}

TEST(ThinServer, RejectsBadSeal) {
  Fixture f;
  f.runtime.start_server(1, {"run.matchlet"});
  const CodeBundle b = make_bundle();
  EXPECT_EQ(f.runtime.install_local(1, b, b.seal("wrong-secret")), DeployResult::kBadSeal);
  EXPECT_EQ(f.installs, 0);
  EXPECT_EQ(f.runtime.stats().rejected_seal, 1u);
}

TEST(ThinServer, RejectsMissingCapability) {
  Fixture f;
  f.runtime.start_server(1, {});  // no grants
  const CodeBundle b = make_bundle();
  EXPECT_EQ(f.runtime.install_local(1, b, b.seal("gloss-authority-secret")),
            DeployResult::kMissingCapability);
  f.runtime.grant_capability(1, "run.matchlet");
  EXPECT_EQ(f.runtime.install_local(1, b, b.seal("gloss-authority-secret")),
            DeployResult::kInstalled);
  f.runtime.revoke_capability(1, "run.matchlet");
  CodeBundle v2 = make_bundle();
  v2.set_version(2);
  EXPECT_EQ(f.runtime.install_local(1, v2, v2.seal("gloss-authority-secret")),
            DeployResult::kMissingCapability);
}

TEST(ThinServer, RejectsUnknownComponentType) {
  Fixture f;
  f.runtime.start_server(1, {"run.matchlet"});
  CodeBundle b("x", "no-such-component", xml::Element("config"));
  EXPECT_EQ(f.runtime.install_local(1, b, b.seal("gloss-authority-secret")),
            DeployResult::kUnknownComponent);
}

TEST(ThinServer, VersionedReplacementStopsOldInstance) {
  Fixture f;
  f.runtime.start_server(1, {"run.matchlet"});
  const CodeBundle v1 = make_bundle();
  ASSERT_EQ(f.runtime.install_local(1, v1, v1.seal("gloss-authority-secret")),
            DeployResult::kInstalled);
  CodeBundle v2 = make_bundle();
  v2.set_version(2);
  EXPECT_EQ(f.runtime.install_local(1, v2, v2.seal("gloss-authority-secret")),
            DeployResult::kReplaced);
  EXPECT_EQ(f.stops, 1);
  EXPECT_EQ(f.runtime.installation(1, "matchlet-1")->bundle.version(), 2);
  // Re-pushing the old version is an idempotent no-op.
  EXPECT_EQ(f.runtime.install_local(1, v1, v1.seal("gloss-authority-secret")),
            DeployResult::kInstalled);
  EXPECT_EQ(f.runtime.installation(1, "matchlet-1")->bundle.version(), 2);
}

TEST(ThinServer, UninstallRunsTeardown) {
  Fixture f;
  f.runtime.start_server(1, {"run.matchlet"});
  const CodeBundle b = make_bundle();
  ASSERT_EQ(f.runtime.install_local(1, b, b.seal("gloss-authority-secret")),
            DeployResult::kInstalled);
  EXPECT_TRUE(f.runtime.uninstall(1, "matchlet-1"));
  EXPECT_EQ(f.stops, 1);
  EXPECT_FALSE(f.runtime.uninstall(1, "matchlet-1"));
  EXPECT_EQ(f.runtime.installation(1, "matchlet-1"), nullptr);
}

TEST(ThinServer, StopServerTearsDownEverything) {
  Fixture f;
  f.runtime.start_server(1, {"run.matchlet"});
  for (int i = 0; i < 3; ++i) {
    CodeBundle b = make_bundle("m" + std::to_string(i));
    ASSERT_EQ(f.runtime.install_local(1, b, b.seal("gloss-authority-secret")),
              DeployResult::kInstalled);
  }
  f.runtime.stop_server(1);
  EXPECT_EQ(f.stops, 3);
  EXPECT_FALSE(f.runtime.server_running(1));
}

TEST(Deployer, PushOverNetwork) {
  Fixture f;
  f.runtime.start_server(2, {"run.matchlet"});
  BundleDeployer deployer(f.net, f.runtime);
  Result<DeployResult> outcome = Status(Code::kUnavailable, "pending");
  deployer.push(0, 2, make_bundle(), [&](Result<DeployResult> r) { outcome = std::move(r); });
  f.sched.run();
  ASSERT_TRUE(outcome.is_ok());
  EXPECT_EQ(outcome.value(), DeployResult::kInstalled);
  EXPECT_NE(f.runtime.installation(2, "matchlet-1"), nullptr);
}

TEST(Deployer, ForgedSealRejectedRemotely) {
  Fixture f;
  f.runtime.start_server(2, {"run.matchlet"});
  BundleDeployer deployer(f.net, f.runtime);
  const CodeBundle b = make_bundle();
  Result<DeployResult> outcome = Status(Code::kUnavailable, "pending");
  deployer.push_with_seal(0, 2, b, b.seal("attacker"), [&](Result<DeployResult> r) {
    outcome = std::move(r);
  });
  f.sched.run();
  ASSERT_TRUE(outcome.is_ok());
  EXPECT_EQ(outcome.value(), DeployResult::kBadSeal);
}

TEST(Deployer, TimeoutWhenTargetDead) {
  Fixture f;
  f.runtime.start_server(2, {"run.matchlet"});
  f.net.set_host_up(2, false);
  BundleDeployer deployer(f.net, f.runtime);
  Result<DeployResult> outcome = Status(Code::kUnavailable, "pending");
  deployer.push(0, 2, make_bundle(),
                [&](Result<DeployResult> r) { outcome = std::move(r); },
                duration::seconds(1));
  f.sched.run();
  EXPECT_FALSE(outcome.is_ok());
  EXPECT_EQ(outcome.status().code(), Code::kTimeout);
}

TEST(Deployer, InstallObserverFires) {
  Fixture f;
  f.runtime.start_server(2, {"run.matchlet"});
  sim::HostId observed = sim::kNoHost;
  std::string observed_name;
  f.runtime.add_install_observer([&](sim::HostId h, const Installation& inst) {
    observed = h;
    observed_name = inst.bundle.name();
  });
  BundleDeployer deployer(f.net, f.runtime);
  deployer.push(0, 2, make_bundle());
  f.sched.run();
  EXPECT_EQ(observed, 2u);
  EXPECT_EQ(observed_name, "matchlet-1");
}

}  // namespace
}  // namespace aa::bundle
