#!/usr/bin/env python3
"""Diff two bench snapshot files (BENCH_<name>.json, written by a bench
run with --snapshot) and flag per-metric regressions.

Usage:
    bench_diff.py BASELINE.json CURRENT.json [--threshold PCT]
                  [--ignore GLOB]... [--quiet]

Prints a per-metric delta table and exits nonzero when any metric moved
by more than the threshold (default 10%) in either direction — a bench
that suddenly delivers more messages is as suspicious as one delivering
fewer.  Wall-clock keys (*wall_us, *us_per_event*) are noisy on shared
CI runners, so they are reported but never fail the diff; use --ignore
to mute other known-noisy keys (fnmatch globs, e.g. 'scaling.*').

Timing-independent counters (delivered, transit, matches, ...) are the
contract: they are deterministic replays of the simulation, so any
drift is a real behaviour change, not noise.
"""

import argparse
import fnmatch
import json
import sys

# Keys matching these globs are informational: reported, never fatal.
# The profiler keys (busy/barrier_wait/serialization/merge) are real
# wall-clock attribution, so they vary with runner load like wall_us.
# The codec.* and batch.* keys (C7 section e, C1 section f) are byte
# and packet counts from the deterministic simulator — deliberately
# absent here so the >=2x binary reduction and the batching
# packets-per-delivery win stay gated.
NOISY = ["*wall_us", "*us_per_event*", "*events_per_sec*", "*speedup*",
         "*.hardware_threads", "*busy_us", "*barrier_wait_us",
         "*serialization_us", "*merge_us", "*us_per_doc*"]


def load_counters(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"bench_diff: cannot read {path}: {e}")
    counters = doc.get("counters")
    if not isinstance(counters, dict):
        sys.exit(f"bench_diff: {path} has no 'counters' object")
    return counters


def matches_any(key, globs):
    return any(fnmatch.fnmatch(key, g) for g in globs)


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline", help="baseline BENCH_*.json")
    ap.add_argument("current", help="current BENCH_*.json")
    ap.add_argument("--threshold", type=float, default=10.0,
                    help="max allowed change in %% (default: 10)")
    ap.add_argument("--ignore", action="append", default=[],
                    help="fnmatch glob of keys to skip entirely (repeatable)")
    ap.add_argument("--quiet", action="store_true",
                    help="print only regressions and the summary line")
    args = ap.parse_args()

    base = load_counters(args.baseline)
    cur = load_counters(args.current)

    keys = sorted(set(base) | set(cur))
    rows = []          # (key, base, cur, delta_pct, status)
    regressions = []
    for key in keys:
        if matches_any(key, args.ignore):
            continue
        b, c = base.get(key), cur.get(key)
        if b is None or c is None:
            status = "added" if b is None else "removed"
            rows.append((key, b, c, None, status))
            # A vanished metric is a failed contract; a new one is fine.
            if status == "removed":
                regressions.append(key)
            continue
        if b == c:
            delta = 0.0
        elif b == 0:
            delta = float("inf")
        else:
            delta = (c - b) / b * 100.0
        noisy = matches_any(key, NOISY)
        over = delta != 0.0 and abs(delta) > args.threshold
        status = "ok"
        if over:
            status = "noisy" if noisy else "REGRESSION"
        if status == "REGRESSION":
            regressions.append(key)
        rows.append((key, b, c, delta, status))

    width = max([len(k) for k, *_ in rows], default=10)
    header = f"{'metric':<{width}}  {'baseline':>14}  {'current':>14}  {'delta':>9}  status"
    printed_header = False
    for key, b, c, delta, status in rows:
        if args.quiet and status in ("ok", "added"):
            continue
        if not printed_header:
            print(header)
            print("-" * len(header))
            printed_header = True
        fb = "-" if b is None else str(b)
        fc = "-" if c is None else str(c)
        fd = ("-" if delta is None
              else "inf%" if delta == float("inf")
              else f"{delta:+.1f}%")
        print(f"{key:<{width}}  {fb:>14}  {fc:>14}  {fd:>9}  {status}")

    compared = sum(1 for _, b, c, *_ in rows if b is not None and c is not None)
    print(f"\n{compared} metrics compared, threshold {args.threshold:.0f}%: "
          f"{len(regressions)} regression(s)")
    if regressions:
        for key in regressions:
            print(f"  FAIL {key}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
