// trace_validate — standalone checker for exported Chrome trace JSON.
//
// Usage: trace_validate <trace.json> [...]
//
// Runs the same structural checks the benches apply before declaring a
// trace good (span nesting, monotonic timestamps, unique ids, parent
// links within one trace, plus counter tracks: numeric values,
// non-decreasing per-track timestamps, and thread/process naming for
// every (pid, tid) that emits counters) and prints every problem
// found.  Exit code 0 when every file validates, 1 otherwise — suitable
// for CI; 2 for usage errors.
#include <cstdio>

#include "obs/trace.hpp"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <trace.json> [...]\n", argv[0]);
    return 2;
  }
  bool all_ok = true;
  for (int i = 1; i < argc; ++i) {
    const auto problems = aa::obs::validate_chrome_trace_file(argv[i]);
    if (problems.empty()) {
      std::printf("%s: OK\n", argv[i]);
      continue;
    }
    all_ok = false;
    std::printf("%s: %zu problem(s)\n", argv[i], problems.size());
    for (const auto& p : problems) std::printf("  - %s\n", p.c_str());
  }
  return all_ok ? 0 : 1;
}
